"""Mempool behaviour under interleaved template building and tip rotation.

The pool server rebuilds block templates continuously while blocks keep
confirming underneath it, so ``Mempool.select`` / ``remove_included`` /
``revalidate`` must compose: selection stays pure and fee-stable between
builds, confirmed transactions drop out, chained spends stay eligible
across rotations, and copies invalidated by an external tip are evicted.
"""

from __future__ import annotations

import hashlib
import itertools

import pytest

from repro.baselines.sha256d import Sha256d
from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.lamport import Wallet
from repro.blockchain.ledger import Ledger
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import mine_block
from repro.blockchain.transaction import Transaction
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.pool.jobs import ChainTemplateSource, JobManager

POOL_ADDRESS = b"test-pool".ljust(32, b"\x00")


def wallet(tag: str) -> Wallet:
    return Wallet(hashlib.sha256(tag.encode()).digest())


@pytest.fixture()
def rig():
    """(source, chain, mempool, ledger, alice, bob) wired like the pool."""
    ledger = Ledger()
    alice = wallet("alice")
    bob = wallet("bob")
    ledger.register(alice.address, 1000)
    ledger.register(bob.address, 1000)
    mempool = Mempool(ledger)
    chain = Blockchain(
        Sha256d(),
        genesis_bits=target_to_compact(difficulty_to_target(2.0)),
        schedule=RetargetSchedule(interval=10_000),
    )
    clock = itertools.count(100)
    source = ChainTemplateSource(
        chain, mempool, pool_address=POOL_ADDRESS,
        now_fn=lambda: next(clock),
    )
    return source, chain, mempool, ledger, alice, bob


def confirm_template(source):
    """One pool tip rotation: build, mine, submit (applies + prunes)."""
    block, height = source.build_template()
    mined = mine_block(block, Sha256d(), max_attempts=500_000)
    source.submit_block(mined.block)
    return mined.block, height


class TestSelectionStability:
    def test_select_is_pure_between_builds(self, rig):
        source, _, mempool, _, alice, bob = rig
        for nonce, fee in enumerate((5, 3, 8)):
            mempool.add(Transaction.create(alice, bob.address, 10, fee, nonce))
        first, _ = source.build_template()
        second, _ = source.build_template()
        # Building a template must not consume or reorder the pool.
        assert first.transactions[1:] == second.transactions[1:]
        assert len(mempool) == 3

    def test_equal_fee_ordering_is_insertion_order_independent(self, rig):
        _, _, _, ledger, alice, bob = rig
        carol = wallet("carol")
        ledger.register(carol.address, 1000)
        txs = [
            Transaction.create(sender, bob.address, 10, 7, 0)
            for sender in (alice, carol)
        ]
        orders = []
        for batch in (txs, list(reversed(txs))):
            pool = Mempool(ledger)
            for tx in batch:
                pool.add(tx)
            orders.append([tx.tx_id() for tx in pool.select(10)])
        assert orders[0] == orders[1]
        # The documented tie-break: ascending tx_id at equal fee.
        assert orders[0] == sorted(orders[0])

    def test_cross_sender_fee_priority_with_nonce_chains(self, rig):
        source, _, mempool, ledger, alice, bob = rig
        carol = wallet("carol")
        ledger.register(carol.address, 1000)
        low = Transaction.create(alice, bob.address, 10, 1, 0)
        high = Transaction.create(alice, bob.address, 10, 99, 1)
        mid = Transaction.create(carol, bob.address, 10, 9, 0)
        for tx in (low, high, mid):
            mempool.add(tx)
        # The rich nonce-1 spend is gated behind its cheap predecessor:
        # it must not jump the queue, and carol's fee wins the first slot.
        assert mempool.select(2) == [mid, low]
        assert mempool.select(3) == [mid, low, high]
        # Template assembly sees the same order after the coinbase.
        block, _ = source.build_template()
        assert list(block.transactions[1:]) == [
            tx.serialize() for tx in (mid, low, high)
        ]


class TestTipRotation:
    def test_chained_spends_drain_across_rotations(self, rig):
        source, chain, mempool, ledger, alice, bob = rig
        source.max_transactions = 1  # one transaction per block
        fees = (5, 3, 8)
        for nonce, fee in enumerate(fees):
            mempool.add(Transaction.create(alice, bob.address, 10, fee, nonce))
        for expected_nonce in range(3):
            block, _ = confirm_template(source)
            included = Transaction.deserialize(block.transactions[1])
            # Nonce order, never fee order, within one sender's chain.
            assert included.nonce == expected_nonce
            assert len(mempool) == 2 - expected_nonce
        assert chain.height() == 3
        assert ledger.balance(alice.address) == 1000 - 3 * 10 - sum(fees)
        assert ledger.balance(bob.address) == 1000 + 3 * 10

    def test_confirmed_transactions_leave_the_next_template(self, rig):
        source, _, mempool, _, alice, bob = rig
        source.max_transactions = 1
        tx0 = Transaction.create(alice, bob.address, 10, 2, 0)
        tx1 = Transaction.create(alice, bob.address, 10, 2, 1)
        mempool.add(tx0)
        mempool.add(tx1)
        confirm_template(source)  # confirms tx0
        block, _ = source.build_template()
        assert tx0.serialize() not in block.transactions
        assert block.transactions[1] == tx1.serialize()

    def test_interleaved_add_between_build_and_submit(self, rig):
        # A transaction arriving after a template was built but before the
        # block confirms must survive the rotation and appear next.
        source, _, mempool, _, alice, bob = rig
        mempool.add(Transaction.create(alice, bob.address, 10, 2, 0))
        block, _ = source.build_template()
        late = Transaction.create(alice, bob.address, 10, 4, 1)
        mempool.add(late)
        mined = mine_block(block, Sha256d(), max_attempts=500_000)
        source.submit_block(mined.block)
        assert len(mempool) == 1
        nxt, _ = source.build_template()
        assert nxt.transactions[1] == late.serialize()

    def test_external_tip_stales_pool_copy(self, rig):
        # The same transaction confirms through a block this pool did not
        # build: revalidate must evict the stale copy, keep the successor.
        source, _, mempool, ledger, alice, bob = rig
        tx0 = Transaction.create(alice, bob.address, 10, 2, 0)
        tx1 = Transaction.create(alice, bob.address, 10, 2, 1)
        mempool.add(tx0)
        mempool.add(tx1)
        ledger.apply_block([tx0], wallet("rival").address)
        assert mempool.revalidate() == 1
        assert len(mempool) == 1
        block, _ = source.build_template()
        assert list(block.transactions[1:]) == [tx1.serialize()]

    def test_revalidate_is_nonce_scoped(self, rig):
        # A conflicting spend at the same nonce (different recipient)
        # confirms externally.  revalidate evicts by stale nonce only:
        # the orphaned successor stays pooled — pinned behaviour, callers
        # must tolerate apply-time rejection for such leftovers.
        _, _, mempool, ledger, alice, bob = rig
        mempool.add(Transaction.create(alice, bob.address, 10, 2, 0))
        mempool.add(Transaction.create(alice, bob.address, 10, 2, 1))
        # A second wallet over the same seed re-derives the one-time keys,
        # modelling a double-spend the honest wallet would refuse to sign.
        alice_evil = wallet("alice")
        rival_spend = Transaction.create(
            alice_evil, wallet("carol").address, 1, 1, 0
        )
        ledger.apply_block([rival_spend], wallet("rival").address)
        assert mempool.revalidate() == 1  # the nonce-0 copy only
        leftover = mempool.select(10)
        assert [tx.nonce for tx in leftover] == [1]


class TestJobManagerRotation:
    def test_clean_rotation_invalidates_previous_jobs(self, rig):
        source, *_ = rig
        manager = JobManager(source, max_jobs=4)
        first = manager.rotate(clean=True)
        refresh = manager.rotate(clean=False)
        assert manager.live_ids() == {first.job_id, refresh.job_id}
        clean = manager.rotate(clean=True)
        assert manager.live_ids() == {clean.job_id}

    def test_refresh_window_evicts_oldest(self, rig):
        source, *_ = rig
        manager = JobManager(source, max_jobs=2)
        jobs = [manager.rotate(clean=False) for _ in range(3)]
        assert manager.live_ids() == {jobs[1].job_id, jobs[2].job_id}
        assert manager.current.job_id == jobs[2].job_id

    def test_rotation_tracks_confirmed_tip(self, rig):
        source, chain, mempool, _, alice, bob = rig
        mempool.add(Transaction.create(alice, bob.address, 10, 2, 0))
        manager = JobManager(source)
        before = manager.rotate(clean=True)
        assert before.height == 1
        assert len(before.transactions) == 2  # coinbase + the spend
        confirm_template(source)
        after = manager.rotate(clean=True)
        assert after.height == 2
        assert after.header.prev_hash == chain.tip_id
        assert len(after.transactions) == 1  # mempool drained
