"""Merkle tree tests."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.blockchain.merkle import merkle_proof, merkle_root, verify_proof
from repro.errors import ChainError


def txs(n):
    return [f"tx-{i}".encode() for i in range(n)]


class TestRoot:
    def test_single_transaction_root_is_leaf_hash(self):
        tx = b"only"
        expected = hashlib.sha256(hashlib.sha256(tx).digest()).digest()
        assert merkle_root([tx]) == expected

    def test_empty_rejected(self):
        with pytest.raises(ChainError):
            merkle_root([])

    def test_order_matters(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_content_matters(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"a", b"c"])

    def test_odd_count_duplicates_last(self):
        # Classic Bitcoin behaviour: [a,b,c] hashes like [a,b,c,c].
        assert merkle_root([b"a", b"b", b"c"]) == merkle_root([b"a", b"b", b"c", b"c"])

    def test_deterministic(self):
        assert merkle_root(txs(7)) == merkle_root(txs(7))


class TestProofs:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13])
    def test_every_index_verifies(self, n):
        transactions = txs(n)
        root = merkle_root(transactions)
        for index, tx in enumerate(transactions):
            proof = merkle_proof(transactions, index)
            assert verify_proof(tx, proof, root)

    def test_wrong_transaction_fails(self):
        transactions = txs(8)
        root = merkle_root(transactions)
        proof = merkle_proof(transactions, 3)
        assert not verify_proof(b"forged", proof, root)

    def test_wrong_index_proof_fails(self):
        transactions = txs(8)
        root = merkle_root(transactions)
        proof = merkle_proof(transactions, 2)
        assert not verify_proof(transactions[3], proof, root)

    def test_tampered_proof_fails(self):
        transactions = txs(8)
        root = merkle_root(transactions)
        proof = merkle_proof(transactions, 0)
        sibling, is_right = proof[0]
        proof[0] = (bytes(32), is_right)
        assert not verify_proof(transactions[0], proof, root)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ChainError):
            merkle_proof(txs(4), 4)

    def test_proof_length_is_log(self):
        assert len(merkle_proof(txs(16), 0)) == 4
        assert len(merkle_proof(txs(17), 0)) == 5

    @given(st.integers(min_value=1, max_value=40), st.data())
    def test_proof_property(self, n, data):
        transactions = txs(n)
        index = data.draw(st.integers(0, n - 1))
        root = merkle_root(transactions)
        proof = merkle_proof(transactions, index)
        assert verify_proof(transactions[index], proof, root)
