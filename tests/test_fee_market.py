"""Fee-market mempool tests: eviction ordering, RBF boundaries, selection
purity, and the coded admission-rejection slugs.

Conventions follow ``tests/test_mempool_rotation.py``: deterministic
wallets from tagged seeds, and — because Lamport one-time keys refuse to
re-sign a nonce — a replacement transaction is built from a *rebuilt*
wallet over the same seed (the documented RBF pattern: replacing burns
the one-time key either way).
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain import Ledger, Mempool, Transaction, Wallet, fee_rate
from repro.blockchain.transaction import TRANSACTION_BYTES
from repro.errors import (
    FEE_TOO_LOW,
    MEMPOOL_FULL,
    MEMPOOL_REJECT_CODES,
    RBF_BUMP_TOO_SMALL,
    ChainError,
    ValidationError,
)


def wallet(tag: str) -> Wallet:
    return Wallet(hashlib.sha256(tag.encode()).digest())


def funded_pool(*tags: str, balance: int = 1000, **kwargs):
    """A mempool over a ledger with one funded wallet per tag."""
    ledger = Ledger()
    wallets = []
    for tag in tags:
        w = wallet(tag)
        ledger.register(w.address, balance)
        wallets.append(w)
    return Mempool(ledger, **kwargs), wallets


class TestRejectionCodes:
    """Satellite: admission failures carry stable codes, not prose."""

    def test_codes_are_exported_and_distinct(self):
        assert MEMPOOL_FULL in MEMPOOL_REJECT_CODES
        assert FEE_TOO_LOW in MEMPOOL_REJECT_CODES
        assert RBF_BUMP_TOO_SMALL in MEMPOOL_REJECT_CODES
        assert len(set(MEMPOOL_REJECT_CODES)) == 3

    def test_mempool_full_code(self):
        pool, (alice, bob) = funded_pool("alice", "bob", max_size=1)
        pool.add(Transaction.create(alice, bob.address, 10, 5, 0))
        with pytest.raises(ValidationError) as exc:
            pool.add(Transaction.create(bob, alice.address, 10, 5, 0))
        assert exc.value.code == MEMPOOL_FULL

    def test_fee_too_low_code(self):
        pool, (alice, bob) = funded_pool(
            "alice", "bob", min_fee_rate=10 / TRANSACTION_BYTES
        )
        with pytest.raises(ValidationError) as exc:
            pool.add(Transaction.create(alice, bob.address, 10, 9, 0))
        assert exc.value.code == FEE_TOO_LOW
        # At the floor exactly: admitted.
        pool.add(Transaction.create(bob, alice.address, 10, 10, 0))
        assert len(pool) == 1

    def test_rbf_bump_too_small_code(self):
        pool, (alice, bob) = funded_pool("alice", "bob")
        pool.add(Transaction.create(alice, bob.address, 10, 5, 0))
        # Same fee, different payload (a byte-identical retry would be a
        # duplicate — Lamport signing is deterministic).
        retry = Transaction.create(wallet("alice"), bob.address, 11, 5, 0)
        with pytest.raises(ValidationError) as exc:
            pool.add(retry)
        assert exc.value.code == RBF_BUMP_TOO_SMALL


class TestReplaceByFee:
    def test_replacement_swaps_the_slot(self):
        pool, (alice, bob) = funded_pool("alice", "bob")
        old = Transaction.create(alice, bob.address, 10, 5, 0)
        pool.add(old)
        new = Transaction.create(wallet("alice"), bob.address, 20, 6, 0)
        pool.add(new)
        assert len(pool) == 1
        assert new.tx_id() in pool and old.tx_id() not in pool
        assert pool.replacements == 1
        assert pool.select(1) == [new]

    def test_custom_minimum_bump_boundary(self):
        pool, (alice, bob) = funded_pool("alice", "bob", rbf_min_bump=5)
        pool.add(Transaction.create(alice, bob.address, 10, 5, 0))
        with pytest.raises(ValidationError) as exc:
            pool.add(Transaction.create(wallet("alice"), bob.address, 10, 9, 0))
        assert exc.value.code == RBF_BUMP_TOO_SMALL
        pool.add(Transaction.create(wallet("alice"), bob.address, 10, 10, 0))
        assert pool.replacements == 1

    def test_failed_rbf_keeps_incumbent(self):
        pool, (alice, bob) = funded_pool("alice", "bob")
        old = Transaction.create(alice, bob.address, 10, 5, 0)
        pool.add(old)
        with pytest.raises(ValidationError):
            pool.add(Transaction.create(wallet("alice"), bob.address, 11, 5, 0))
        assert old.tx_id() in pool and len(pool) == 1
        assert pool.replacements == 0

    def test_mid_chain_replacement_keeps_chain_selectable(self):
        pool, (alice, bob) = funded_pool("alice", "bob")
        tx0 = Transaction.create(alice, bob.address, 10, 2, 0)
        tx1 = Transaction.create(alice, bob.address, 10, 2, 1)
        pool.add(tx0)
        pool.add(tx1)
        new0 = Transaction.create(wallet("alice"), bob.address, 10, 4, 0)
        pool.add(new0)
        assert len(pool) == 2
        assert pool.select(2) == [new0, tx1]

    def test_rbf_still_ledger_validated_at_base_nonce(self):
        pool, (alice, bob) = funded_pool("alice", "bob", balance=20)
        pool.add(Transaction.create(alice, bob.address, 10, 5, 0))
        # Replacement pays a bigger fee but overdraws the account.
        with pytest.raises(ChainError):
            pool.add(Transaction.create(wallet("alice"), bob.address, 10, 50, 0))


class TestEviction:
    def test_lowest_fee_tail_evicted_first(self):
        pool, (a, b, c, d) = funded_pool("a", "b", "c", "d", max_size=2)
        cheap = Transaction.create(a, d.address, 10, 1, 0)
        rich = Transaction.create(b, d.address, 10, 9, 0)
        pool.add(cheap)
        pool.add(rich)
        incoming = Transaction.create(c, d.address, 10, 4, 0)
        pool.add(incoming)
        assert len(pool) == 2
        assert pool.last_evicted == [cheap]
        assert pool.evictions == 1
        assert cheap.tx_id() not in pool
        assert rich.tx_id() in pool and incoming.tx_id() in pool

    def test_equal_fee_does_not_evict(self):
        pool, (a, b, c) = funded_pool("a", "b", "c", max_size=1)
        pool.add(Transaction.create(a, c.address, 10, 4, 0))
        with pytest.raises(ValidationError) as exc:
            pool.add(Transaction.create(b, c.address, 10, 4, 0))
        assert exc.value.code == MEMPOOL_FULL
        assert pool.evictions == 0 and pool.last_evicted == []

    def test_only_chain_tails_are_victims(self):
        pool, (a, b, c, d) = funded_pool("a", "b", "c", "d", max_size=3)
        head = Transaction.create(a, d.address, 10, 9, 0)   # protected head
        tail = Transaction.create(a, d.address, 10, 1, 1)   # cheapest tail
        other = Transaction.create(b, d.address, 10, 5, 0)
        for tx in (head, tail, other):
            pool.add(tx)
        incoming = Transaction.create(c, d.address, 10, 3, 0)
        pool.add(incoming)
        # The cheapest entry overall is a's *tail*, so the chain head
        # survives and the nonce sequence stays unbroken.
        assert pool.last_evicted == [tail]
        assert head.tx_id() in pool
        assert pool.select(10) == [head, other, incoming]

    def test_own_sender_tail_is_protected(self):
        # The incoming tx chains on its sender's tail: evicting it would
        # orphan the incoming nonce, so the add must fail instead.
        pool, (alice, bob) = funded_pool("alice", "bob", max_size=1)
        pool.add(Transaction.create(alice, bob.address, 10, 1, 0))
        with pytest.raises(ValidationError) as exc:
            pool.add(Transaction.create(alice, bob.address, 10, 99, 1))
        assert exc.value.code == MEMPOOL_FULL

    def test_nonce_gap_checked_before_eviction(self):
        pool, (a, b, c) = funded_pool("a", "b", "c", max_size=1)
        victim = Transaction.create(a, c.address, 10, 1, 0)
        pool.add(victim)
        with pytest.raises(ChainError):
            pool.add(Transaction.create(b, c.address, 10, 9, 3))  # gap
        # The invalid incoming must not have evicted anything.
        assert victim.tx_id() in pool and pool.evictions == 0


#: Tags for the differential fuzz below (wallets rebuilt per example —
#: one-time keys sign once).
_TAGS = [f"s{i}" for i in range(6)]


class TestEvictionFuzz:
    @settings(max_examples=50, deadline=None)
    @given(
        fees=st.lists(
            st.tuples(st.integers(0, len(_TAGS) - 1), st.integers(0, 15)),
            min_size=1, max_size=12,
        ),
        cap=st.integers(1, 4),
    )
    def test_matches_reference_model(self, fees, cap):
        """Differential: the pool's admit/evict/reject decisions match a
        naive reference model (single-tx senders, so every entry is a
        tail), and every transaction ends in exactly one bucket."""
        pool, wallets = funded_pool(*_TAGS, max_size=cap)
        model: dict[bytes, int] = {}  # txid -> fee
        seen_senders = set()
        outcomes = {"accepted": [], "evicted": [], "rejected": []}
        for sender_idx, fee in fees:
            if sender_idx in seen_senders:
                continue  # one nonce-0 tx per sender: RBF is tested above
            seen_senders.add(sender_idx)
            tx = Transaction.create(
                wallets[sender_idx], wallets[0].address, 1, fee, 0
            )
            txid = tx.tx_id()
            # Reference decision.
            if len(model) < cap:
                expect = "accepted"
            else:
                victim = min(model, key=lambda t: (model[t], t))
                expect = "accepted" if fee > model[victim] else "rejected"
            try:
                pool.add(tx)
            except ValidationError as exc:
                assert exc.code == MEMPOOL_FULL
                assert expect == "rejected"
                outcomes["rejected"].append(txid)
                continue
            assert expect == "accepted"
            outcomes["accepted"].append(txid)
            if len(model) >= cap:
                del model[victim]
                assert [v.tx_id() for v in pool.last_evicted] == [victim]
                outcomes["evicted"].append(victim)
            model[txid] = fee
            assert len(pool) <= cap
        # Pool contents equal the model, exactly.
        assert {tx.tx_id() for tx in pool.select(100)} == set(model)
        # Conservation: accepted = in-pool + evicted; nothing vanished.
        assert set(outcomes["accepted"]) == set(model) | set(outcomes["evicted"])
        assert pool.evictions == len(outcomes["evicted"])


class TestSelectionPurity:
    def test_select_is_pure_under_market_churn(self):
        pool, (a, b, c, d) = funded_pool("a", "b", "c", "d", max_size=3)
        pool.add(Transaction.create(a, d.address, 10, 2, 0))
        pool.add(Transaction.create(b, d.address, 10, 7, 0))
        pool.add(Transaction.create(c, d.address, 10, 4, 0))
        pool.add(Transaction.create(wallet("a"), d.address, 10, 8, 0))  # RBF
        pool.add(Transaction.create(d, a.address, 10, 5, 0))            # evicts c
        before = len(pool)
        first = pool.select(10)
        second = pool.select(10)
        assert first == second
        assert len(pool) == before
        # Historical ordering contract: descending fee, ascending txid.
        fees = [tx.fee for tx in first]
        assert fees == sorted(fees, reverse=True)

    def test_fee_rate_helper_matches_fixed_size(self):
        pool, (a, b) = funded_pool("a", "b")
        tx = Transaction.create(a, b.address, 10, 33, 0)
        assert fee_rate(tx) == 33 / TRANSACTION_BYTES


class TestIndexConsistency:
    def test_sender_index_survives_block_application(self):
        pool, (alice, bob) = funded_pool("alice", "bob")
        miner = wallet("miner")
        tx0 = Transaction.create(alice, bob.address, 10, 1, 0)
        tx1 = Transaction.create(alice, bob.address, 10, 1, 1)
        pool.add(tx0)
        pool.add(tx1)
        selected = pool.select(1)
        pool.ledger.apply_block(selected, miner.address)
        pool.remove_included(selected)
        assert pool.revalidate() == 0
        # The remaining nonce-1 slot still supports RBF after rotation.
        bump = Transaction.create(wallet("alice"), bob.address, 10, 3, 1)
        pool.add(bump)
        assert pool.select(1) == [bump]
        assert pool.stats()["senders"] == 1

    def test_stats_counters(self):
        pool, (a, b, c) = funded_pool("a", "b", "c", max_size=1)
        pool.add(Transaction.create(a, c.address, 10, 1, 0))
        pool.add(Transaction.create(b, c.address, 10, 5, 0))  # evicts a's
        pool.add(Transaction.create(wallet("b"), c.address, 10, 7, 0))  # RBF
        stats = pool.stats()
        assert stats == {
            "pending": 1, "senders": 1, "evictions": 1, "replacements": 1
        }
