"""Consensus golden vectors.

A PoW function is a consensus rule: *any* behavioural change to the seed
split, generator, code generator, memory initialisation, or simulator
semantics forks the chain.  These vectors pin the complete pipeline at
test-scale parameters; if one fails, the change is consensus-breaking and
must be treated as a new network version (regenerate deliberately with
the printed values).
"""

import pytest

from repro.core.hashcore import HashCore
from repro.widgetgen.params import GeneratorParams

GOLDEN = {
    b"": "eb6b97e8ae7fd0ed53ea8733b51b32137747a6fcc4fb4f46cb98d19dd9ae999b",
    b"abc": "00710c0ed82c0a52bb4858655829ca9b77e9cb50a8880efeae2ea5c8e0fbf1a1",
    b"hashcore golden vector":
        "9d8846ed4542a238ebc7872389ad6d216568a4a9d7a8ff74e4b12d2c8e3878a2",
    bytes(range(64)):
        "18d4a0db9892034ad50c61f0f0d87a5cb58c22414c20c92482b9a41c497e4d74",
}

GOLDEN_MULTI_ABC = "3b46df741d0268eabb17c006830fc34a21d6f5fa375fd6880942a81f68d4a5ae"


@pytest.fixture(scope="module")
def hashcore():
    return HashCore(params=GeneratorParams.test_scale())


class TestGoldenVectors:
    @pytest.mark.parametrize("data", list(GOLDEN))
    def test_digest_pinned(self, hashcore, data):
        assert hashcore.hash(data).hex() == GOLDEN[data]

    def test_multi_widget_pinned(self):
        hashcore = HashCore(params=GeneratorParams.test_scale(),
                            widgets_per_hash=2)
        assert hashcore.hash(b"abc").hex() == GOLDEN_MULTI_ABC

    def test_vectors_distinct(self):
        assert len(set(GOLDEN.values())) == len(GOLDEN)
