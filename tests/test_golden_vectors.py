"""Consensus golden vectors.

A PoW function is a consensus rule: *any* behavioural change to the seed
split, generator, code generator, memory initialisation, or simulator
semantics forks the chain.  These vectors pin the complete pipeline at
test-scale parameters; if one fails, the change is consensus-breaking and
must be treated as a new network version (regenerate deliberately with
the printed values).
"""

import pytest

from repro.core.hashcore import HashCore
from repro.widgetgen.params import GeneratorParams

GOLDEN = {
    b"": "eb6b97e8ae7fd0ed53ea8733b51b32137747a6fcc4fb4f46cb98d19dd9ae999b",
    b"abc": "00710c0ed82c0a52bb4858655829ca9b77e9cb50a8880efeae2ea5c8e0fbf1a1",
    b"hashcore golden vector":
        "9d8846ed4542a238ebc7872389ad6d216568a4a9d7a8ff74e4b12d2c8e3878a2",
    bytes(range(64)):
        "18d4a0db9892034ad50c61f0f0d87a5cb58c22414c20c92482b9a41c497e4d74",
}

GOLDEN_MULTI_ABC = "3b46df741d0268eabb17c006830fc34a21d6f5fa375fd6880942a81f68d4a5ae"


@pytest.fixture(scope="module")
def hashcore():
    return HashCore(params=GeneratorParams.test_scale())


class TestGoldenVectors:
    @pytest.mark.parametrize("data", list(GOLDEN))
    def test_digest_pinned(self, hashcore, data):
        assert hashcore.hash(data).hex() == GOLDEN[data]

    def test_multi_widget_pinned(self):
        hashcore = HashCore(params=GeneratorParams.test_scale(),
                            widgets_per_hash=2)
        assert hashcore.hash(b"abc").hex() == GOLDEN_MULTI_ABC

    def test_vectors_distinct(self):
        assert len(set(GOLDEN.values())) == len(GOLDEN)


# ----------------------------------------------------------------------
# Gossip-layer golden vector.  The chaos harness replays entire fault
# schedules from one seed, which is only sound if the underlying P2P
# delivery order is itself deterministic.  This pins the complete delivery
# trace (tick, origin, target, block id, outcome) plus the resulting
# reorg counts for a fixed 3-node, delay=2 fork scenario — including the
# first-seen tie-break that leaves node2 on its own equal-work branch.
GOLDEN_GOSSIP_TRACE = (
    "92ac057d906b363152cc085fe3f6ee2562ca225fed2bd46ced722d123236141e"
)
GOLDEN_GOSSIP_REORGS = [1, 0, 0]
GOLDEN_GOSSIP_TIPS = ["025a0dcd3926d697", "025a0dcd3926d697", "04a6638aab1f5e44"]


class TestGossipGoldenVector:
    def _run(self):
        import hashlib

        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.chain import block_id
        from repro.blockchain.difficulty import RetargetSchedule
        from repro.blockchain.node import P2PNetwork
        from repro.core.pow import difficulty_to_target, target_to_compact

        net = P2PNetwork.create(
            3, Sha256d(), schedule=RetargetSchedule(interval=10_000),
            genesis_bits=target_to_compact(difficulty_to_target(16.0)),
            delay=2,
        )
        events = []
        net.on_deliver = lambda tick, origin, target, block, result: (
            events.append(
                f"{tick}:{origin}->{target}:"
                f"{block_id(block).hex()[:12]}:{result.status}"
            )
        )
        net.mine_on(0, [b"a1"], timestamp=30, nonce_salt=0)
        net.mine_on(1, [b"b1"], timestamp=31, nonce_salt=10**6)
        net.tick()
        net.mine_on(1, [b"b2"], timestamp=60, nonce_salt=10**6)
        net.tick()
        net.mine_on(2, [b"c3"], timestamp=90, nonce_salt=5 * 10**5)
        net.settle()
        trace = hashlib.sha256("\n".join(events).encode()).hexdigest()
        return net, events, trace

    def test_delivery_order_pinned(self):
        net, events, trace = self._run()
        assert len(events) == 8
        assert trace == GOLDEN_GOSSIP_TRACE

    def test_reorgs_and_tips_pinned(self):
        net, _, _ = self._run()
        assert [n.reorgs for n in net.nodes] == GOLDEN_GOSSIP_REORGS
        assert [n.chain.tip_id.hex()[:16] for n in net.nodes] == GOLDEN_GOSSIP_TIPS
        assert net.heights() == [2, 2, 2]
