"""Gossip propagation layer: primitives, relay protocols, determinism.

Three layers of coverage:

1. unit tests for the :mod:`repro.blockchain.gossip` primitives (fanout
   policy, seeded sampling, tx pool, compact blocks, the wire-cost
   model) and the :class:`~repro.blockchain.node.P2PNetwork` sender-side
   duplicate suppression;
2. a 100-node golden determinism vector: the complete chaos delivery
   trace and the report JSON are pinned by hash, so any change to relay
   ordering, RNG stream consumption, or report shape is caught loudly;
3. hypothesis fuzzing over fanout × link loss asserting the convergence
   liveness property holds across the gossip parameter space.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import Block
from repro.blockchain.chain import block_id
from repro.blockchain.faults import LinkFaults, Scenario
from repro.blockchain.gossip import (
    BLOCK_RELAY_KINDS,
    CompactBlock,
    FanoutSampler,
    KIND_CATEGORY,
    MESSAGE_OVERHEAD,
    SHORT_ID_BYTES,
    TxPool,
    block_wire_bytes,
    default_fanout,
    message_wire_bytes,
    resolve_fanout,
    short_tx_id,
)
from repro.blockchain.miner import mine_block
from repro.blockchain.network import relay_traffic_model
from repro.blockchain.node import P2PNetwork
from repro.blockchain.sim import ChaosRunner, _stream
from repro.errors import ChainError

pytestmark = pytest.mark.chaos


# ----------------------------------------------------------------------
# fanout policy
# ----------------------------------------------------------------------
class TestFanoutPolicy:
    def test_default_is_sqrt_of_peers(self):
        assert default_fanout(101) == 10  # isqrt(100)
        assert default_fanout(1000) == 31

    def test_default_floor_of_two(self):
        # Fanout 1 degenerates the relay tree into a chain.
        assert default_fanout(3) == 2
        assert default_fanout(5) == 2

    def test_default_clamped_to_peer_count(self):
        assert default_fanout(2) == 1
        assert default_fanout(1) == 1

    def test_resolve_auto(self):
        assert resolve_fanout(0, 101) == 10
        assert resolve_fanout(-3, 101) == 10

    def test_resolve_explicit_clamped(self):
        assert resolve_fanout(8, 101) == 8
        assert resolve_fanout(500, 101) == 100
        # An explicit fanout of 1 is a liveness hazard and is not honored.
        assert resolve_fanout(1, 10) == 2
        assert resolve_fanout(1, 2) == 1  # ...except with a single peer


class TestFanoutSampler:
    def test_deterministic(self):
        a = FanoutSampler(_stream(7, 0x6A55))
        b = FanoutSampler(_stream(7, 0x6A55))
        for _ in range(50):
            assert a.sample(100, 9, exclude=(3,)) == b.sample(100, 9, exclude=(3,))

    def test_no_replacement_and_exclusion(self):
        sampler = FanoutSampler(_stream(1, 2))
        for _ in range(200):
            picks = sampler.sample(20, 6, exclude=(0, 19))
            assert len(picks) == len(set(picks)) == 6
            assert 0 not in picks and 19 not in picks

    def test_small_pool_returns_everyone(self):
        sampler = FanoutSampler(_stream(1, 2))
        assert sorted(sampler.sample(3, 10, exclude=(1,))) == [0, 2]


# ----------------------------------------------------------------------
# tx pool
# ----------------------------------------------------------------------
class TestTxPool:
    def test_add_and_duplicate(self):
        pool = TxPool()
        assert pool.add(b"tx-a")
        assert not pool.add(b"tx-a")
        assert len(pool) == 1
        assert pool.get(short_tx_id(b"tx-a")) == b"tx-a"

    def test_pending_arrival_order_and_limit(self):
        pool = TxPool()
        for i in range(5):
            pool.add(b"tx-%d" % i)
        assert pool.pending(3) == [b"tx-0", b"tx-1", b"tx-2"]
        assert pool.pending(99) == [b"tx-%d" % i for i in range(5)]

    def test_mark_mined_keeps_known(self):
        pool = TxPool()
        pool.add(b"tx-a")
        pool.mark_mined((b"tx-a", b"tx-new"))
        # Neither is a template candidate any more...
        assert pool.pending(10) == []
        # ...but both still resolve for compact reconstruction.
        assert pool.get(short_tx_id(b"tx-a")) == b"tx-a"
        assert pool.get(short_tx_id(b"tx-new")) == b"tx-new"

    def test_fifo_eviction_at_capacity(self):
        pool = TxPool(capacity=3)
        for i in range(5):
            pool.add(b"tx-%d" % i)
        assert len(pool) == 3
        assert pool.get(short_tx_id(b"tx-0")) is None
        assert pool.get(short_tx_id(b"tx-4")) == b"tx-4"

    def test_crash_clear(self):
        pool = TxPool()
        pool.add(b"tx-a")
        pool.clear()
        assert len(pool) == 0 and pool.pending(10) == []

    def test_capacity_validated(self):
        with pytest.raises(ChainError):
            TxPool(capacity=0)


# ----------------------------------------------------------------------
# compact blocks
# ----------------------------------------------------------------------
def _mined_block(transactions: list[bytes]) -> Block:
    template = Block.build(
        prev_hash=bytes(32), transactions=transactions, timestamp=30,
        bits=0x207FFFFF,
    )
    return mine_block(template, Sha256d(), max_attempts=10_000).block


class TestCompactBlock:
    def test_roundtrip_from_warm_pool(self):
        txs = [b"coinbase", b"tx-a", b"tx-b"]
        block = _mined_block(txs)
        compact = CompactBlock.from_block(block)
        assert compact.prefilled == ((0, b"coinbase"),)
        assert compact.short_ids[0] == b""
        pool = TxPool()
        pool.add(b"tx-a")
        pool.add(b"tx-b")
        assert compact.missing_indices(pool) == []
        assert compact.reconstruct(pool) == block

    def test_missing_indices_and_gettxn_completion(self):
        block = _mined_block([b"coinbase", b"tx-a", b"tx-b"])
        compact = CompactBlock.from_block(block)
        pool = TxPool()
        pool.add(b"tx-b")
        assert compact.missing_indices(pool) == [1]
        assert compact.reconstruct(pool) is None
        assert compact.reconstruct(pool, extra={1: b"tx-a"}) == block

    def test_merkle_mismatch_returns_none(self):
        block = _mined_block([b"coinbase", b"tx-a"])
        compact = CompactBlock.from_block(block)
        pool = TxPool()
        # Poison the pool: same short id cannot happen by construction,
        # so fake a stale/wrong body via the extra map instead.
        assert compact.reconstruct(pool, extra={1: b"tx-wrong"}) is None

    def test_compact_smaller_than_full_body(self):
        txs = [b"coinbase"] + [b"tx-%d" % i + bytes(90) for i in range(20)]
        block = _mined_block(txs)
        compact = CompactBlock.from_block(block)
        assert compact.wire_bytes() < block_wire_bytes(block) / 4


class TestWireModel:
    def test_kind_table_complete(self):
        assert set(KIND_CATEGORY) == set(BLOCK_RELAY_KINDS) | {"tx"}

    def test_reference_kinds_cost_hash(self):
        for kind in ("inv", "get", "getblk", "getfull"):
            assert message_wire_bytes(kind) == MESSAGE_OVERHEAD + 32

    def test_tx_and_txn_scale_with_payload(self):
        tx = bytes(96)
        assert message_wire_bytes("tx", txs=(tx,)) == MESSAGE_OVERHEAD + 98
        assert message_wire_bytes(
            "gettxn", indices=(1, 2, 3)
        ) == MESSAGE_OVERHEAD + 32 + 12

    def test_unknown_kind_raises(self):
        with pytest.raises(ChainError):
            message_wire_bytes("bogus")

    def test_short_id_width(self):
        assert len(short_tx_id(b"anything")) == SHORT_ID_BYTES


# ----------------------------------------------------------------------
# sender-side duplicate suppression (P2PNetwork)
# ----------------------------------------------------------------------
class TestBroadcastSuppression:
    def test_known_targets_are_skipped(self):
        net = P2PNetwork.create(4, Sha256d())
        block = net.mine_on(0, [b"a1"], timestamp=30)
        net.settle()
        stats = net.stats()
        assert stats["sends"] == 3 and stats["suppressed_sends"] == 0
        # Everyone has the block now: a re-broadcast schedules nothing.
        net.broadcast(0, block)
        stats = net.stats()
        assert stats["sends"] == 3
        assert stats["suppressed_sends"] == 3
        assert stats["in_flight"] == 0

    def test_suppression_skips_only_knowers(self):
        net = P2PNetwork.create(3, Sha256d())
        block = net.mine_on(0, [b"a1"], timestamp=30)
        net.settle()
        # node1 re-gossips to node2 (knows) and node0 (miner, knows).
        net.broadcast(1, block)
        assert net.stats()["suppressed_sends"] == 2


# ----------------------------------------------------------------------
# golden determinism vector: 100-node gossip chaos run
# ----------------------------------------------------------------------
#: Scenario for the pinned run: 100 nodes, gossip relay, light faults,
#: transactions flowing.  Changing *any* relay decision, RNG stream
#: consumption order, or message schema shifts these hashes.
def _golden_scenario() -> Scenario:
    return Scenario(
        seed=1234,
        n_nodes=100,
        ticks=150,
        mine_prob=0.12,
        mine_until=70,
        convergence_ticks=80,
        link=LinkFaults(delay=1, jitter=1, drop=0.02, duplicate=0.01),
        txs_per_block=2,
        tx_every=3,
        announce_every=8,
    ).with_relay("gossip")


GOLDEN_TRACE_SHA256 = (
    "007d8450fe8e7f18bb78ea39f9151d7914cc275dc77595523d2b8c5110ed3595"
)
GOLDEN_REPORT_SHA256 = (
    "577535301b746ce4295908e0171e1f4809267c67a9d99dbceab93b6179737374"
)


class TestGossipGoldenDeterminism:
    def _run(self):
        events: list[str] = []
        runner = ChaosRunner(
            _golden_scenario(),
            on_deliver=lambda tick, msg, outcome: events.append(
                f"{tick}:{msg.origin}->{msg.target}:{msg.kind}:{outcome}"
            ),
        )
        return runner.run(), events

    def test_delivery_trace_pinned(self):
        report, events = self._run()
        assert report.ok(), report.violations
        assert report.traffic["relay"] == "gossip"
        assert report.traffic["fanout"] == 9
        trace = hashlib.sha256("\n".join(events).encode()).hexdigest()
        assert trace == GOLDEN_TRACE_SHA256

    def test_replay_byte_identical(self):
        first, _ = self._run()
        second, _ = self._run()
        assert first.to_json() == second.to_json()
        digest = hashlib.sha256(first.to_json().encode()).hexdigest()
        assert digest == GOLDEN_REPORT_SHA256


# ----------------------------------------------------------------------
# relay efficiency + analytic model
# ----------------------------------------------------------------------
class TestRelayEfficiency:
    def test_gossip_beats_flood_on_messages(self):
        base = Scenario(
            seed=9, n_nodes=40, ticks=180, mine_prob=0.15, mine_until=100,
            convergence_ticks=80,
            link=LinkFaults(delay=1, jitter=1, drop=0.01),
        )
        flood = ChaosRunner(base).run()
        gossip = ChaosRunner(base.with_relay("gossip")).run()
        assert flood.ok() and gossip.ok()
        assert (
            gossip.traffic["messages_per_block"]
            < flood.traffic["messages_per_block"] / 3
        )

    def test_compact_beats_gossip_on_bytes(self):
        base = Scenario(
            seed=9, n_nodes=40, ticks=180, mine_prob=0.15, mine_until=100,
            convergence_ticks=80,
            link=LinkFaults(delay=1, jitter=1, drop=0.01),
            txs_per_block=3, tx_every=2, tx_size=256,
        )
        gossip = ChaosRunner(base.with_relay("gossip")).run()
        compact = ChaosRunner(base.with_relay("compact")).run()
        assert gossip.ok() and compact.ok()
        assert (
            compact.traffic["bytes_per_block"]
            < gossip.traffic["bytes_per_block"]
        )
        assert compact.messages.get("cmpct_reconstructed", 0) > 0

    def test_analytic_model_tracks_measurement(self):
        base = Scenario(
            seed=21, n_nodes=50, ticks=180, mine_prob=0.15, mine_until=100,
            convergence_ticks=80,
            link=LinkFaults(delay=1),
        ).with_relay("gossip")
        report = ChaosRunner(base).run()
        model = relay_traffic_model(50, "gossip")
        # Measured traffic adds inv/sync overhead on top of the modelled
        # announce+pull floor; both must sit in the same complexity class.
        assert model.messages_per_block <= report.traffic[
            "messages_per_block"
        ] <= 3 * model.messages_per_block

    def test_flood_model_exact(self):
        model = relay_traffic_model(100, "flood")
        assert model.messages_per_block == 9900 and model.hops == 1

    def test_model_rejects_unknown_relay(self):
        with pytest.raises(ChainError):
            relay_traffic_model(10, "carrier-pigeon")


# ----------------------------------------------------------------------
# hypothesis: convergence across the gossip parameter space
# ----------------------------------------------------------------------
class TestGossipConvergenceFuzz:
    @settings(max_examples=20, deadline=None)
    @given(
        fanout=st.integers(min_value=0, max_value=6),
        drop=st.floats(min_value=0.0, max_value=0.12),
        relay=st.sampled_from(["gossip", "compact"]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_eventual_convergence(self, fanout, drop, relay, seed):
        scenario = Scenario(
            seed=seed, n_nodes=10, ticks=180, mine_prob=0.2, mine_until=80,
            convergence_ticks=100,
            link=LinkFaults(delay=1, jitter=2, drop=drop, duplicate=0.03),
            txs_per_block=1, tx_every=4,
            relay=relay, fanout=fanout,
        )
        report = ChaosRunner(scenario).run()
        assert report.ok(), (fanout, drop, relay, seed, report.violations)
        assert report.converged_tick is not None
