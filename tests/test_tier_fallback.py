"""Tests for the degrading execution-tier ladder (jit -> fast -> timed).

A tier that fails on a widget — compile bug, codegen fault, execution-time
error — must degrade to the next rung with identical architectural output,
record the fall-back in the machine's ``tier_stats()``, and block the bad
tier on that program so later runs route around it (self-healing ``auto``
mode).  Only :class:`ExecutionLimitExceeded` is exempt: a fuse trip is an
architectural outcome, the same on every tier, never a tier bug.
"""

from __future__ import annotations

import pytest

from repro.core.hashcore import HashCore
from repro.errors import EngineFault, ExecutionLimitExceeded
from repro.isa.program import Program
from repro.machine.cpu import Machine
from tests.conftest import seed_of


def _fresh_widget(generator, tag: str):
    """A widget of its own (never shared with other tests) so blocking a
    tier on its program cannot leak into the session-scoped population."""
    return generator.widget(seed_of(f"tier-fallback-{tag}"))


def _boom(*_args, **_kwargs):
    raise RuntimeError("injected tier fault")


class TestCompileFailureDegrades:
    def test_jit_compile_failure_falls_back_to_fast(
        self, generator, monkeypatch
    ):
        clean = _fresh_widget(generator, "compile")
        machine_clean = Machine()
        expected = clean.execute(machine_clean, mode="fast")

        widget = _fresh_widget(generator, "compile")
        assert widget.fingerprint() == clean.fingerprint()
        machine = Machine()
        monkeypatch.setattr(Program, "jit_code", _boom)
        result = widget.execute(machine, mode="jit")

        assert result.output == expected.output
        stats = machine.tier_stats()
        assert stats["degradations"] == {"jit->fast": 1}
        assert stats["widgets"] == {widget.name: {"jit->fast": 1}}
        assert len(stats["log"]) == 1
        assert widget.program.tier_blocked("jit")
        assert "jit" in widget.program.cache_stats()["blocked_tiers"]

    def test_blocked_tier_is_skipped_silently_on_rerun(
        self, generator, monkeypatch
    ):
        widget = _fresh_widget(generator, "rerun")
        machine = Machine()
        monkeypatch.setattr(Program, "jit_code", _boom)
        first = widget.execute(machine, mode="jit")
        second = widget.execute(machine, mode="jit")

        assert first.output == second.output
        # Self-healing: the failed compile is paid once, not per hash.
        assert machine.tier_stats()["degradations"] == {"jit->fast": 1}

    def test_fast_translation_failure_falls_back_to_timed(
        self, generator, monkeypatch
    ):
        clean = _fresh_widget(generator, "fastfail")
        expected = clean.execute(Machine(), mode="timed")

        widget = _fresh_widget(generator, "fastfail")
        machine = Machine()
        monkeypatch.setattr(Program, "fast_handlers", _boom)
        result = widget.execute(machine, mode="fast")

        assert result.output == expected.output
        assert machine.tier_stats()["degradations"] == {"fast->timed": 1}
        assert widget.program.tier_blocked("fast")


class TestExecutionTimeFailureDegrades:
    def test_corrupt_jit_artifact_retries_on_fresh_memory(self, generator):
        """An execution-time JIT fault (not a translation fault) may have
        dirtied memory mid-run; the ladder must retry the lower tier on a
        rebuilt memory image and still produce the clean output."""
        clean = _fresh_widget(generator, "execfail")
        expected = clean.execute(Machine(), mode="fast")

        widget = _fresh_widget(generator, "execfail")
        jit = widget.program.jit_code()
        jit.funcs = [
            (_boom if func is not None else None) for func in jit.funcs
        ]
        jit.regions = [None] * len(jit.regions)

        machine = Machine()
        result = widget.execute(machine, mode="jit")
        assert result.output == expected.output
        assert machine.tier_stats()["degradations"] == {"jit->fast": 1}
        assert widget.program.tier_blocked("jit")


class TestFuseTripIsNotDegradation:
    def test_fuse_trip_propagates_on_every_tier(self, generator):
        widget = _fresh_widget(generator, "fuse")
        machine = Machine()

        def build_memory():
            memory = machine.new_memory()
            for directive in widget.spec.plan.directives():
                directive.apply(memory)
            return memory

        for mode in ("jit", "fast", "timed"):
            with pytest.raises(ExecutionLimitExceeded):
                machine.run_with_fallback(
                    widget.program,
                    build_memory,
                    max_instructions=5,
                    snapshot_interval=widget.spec.snapshot_interval,
                    mode=mode,
                )
        # The fuse is an architectural outcome, not a tier bug: nothing
        # may have degraded and no tier may be blocked.
        assert machine.tier_stats()["degradations"] == {}
        assert widget.program.cache_stats()["blocked_tiers"] == []


class TestLadderExhaustion:
    def test_every_tier_failing_raises_tier_degraded(
        self, generator, monkeypatch
    ):
        widget = _fresh_widget(generator, "exhaust")
        widget.program.block_tier("jit")
        widget.program.block_tier("fast")
        machine = Machine()
        monkeypatch.setattr(Program, "code_tuples", _boom)

        with pytest.raises(EngineFault) as excinfo:
            machine.run_with_fallback(widget.program, mode="jit")
        assert excinfo.value.code == "tier-degraded"

    def test_invalidate_code_unblocks_tiers(self, generator):
        widget = _fresh_widget(generator, "unblock")
        widget.program.block_tier("jit")
        assert widget.program.tier_blocked("jit")
        widget.program.invalidate_code()
        assert not widget.program.tier_blocked("jit")
        assert widget.program.cache_stats()["blocked_tiers"] == []


class TestHashCoreSelfHealing:
    def test_auto_mode_digest_survives_jit_failure(
        self, test_params, monkeypatch
    ):
        data = b"tier-fallback self-healing probe"
        core_clean = HashCore(params=test_params, mode="auto")
        expected = core_clean.hash(data)

        core = HashCore(params=test_params, mode="auto")
        monkeypatch.setattr(Program, "jit_code", _boom)
        assert core.hash(data) == expected
        # A second hash of the same input rides the widget cache and the
        # blocked-tier registry: same digest, no second degradation.
        assert core.hash(data) == expected

        tiers = core.cache_stats()["tiers"]
        assert tiers["degradations"] == {"jit->fast": 1}

    def test_cache_stats_exposes_tier_document(self, test_params):
        core = HashCore(params=test_params)
        stats = core.cache_stats()
        assert stats["tiers"] == {
            "degradations": {}, "widgets": {}, "log": [],
            "runs": {"timed": 0, "fast": 0, "jit": 0, "batch": 0},
        }
