"""Assembler / disassembler tests."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble, disassemble
from repro.isa.encoding import encode_program
from repro.isa.opcodes import Opcode


SAMPLE = """
; a small sample exercising every operand shape
start:
    MOVI   r1, 100
    MOVI   r2, 0
loop:
    ADD    r2, r2, r1
    ADDI   r3, r2, -7
    MUL    r4, r2, r3
    LOAD   r5, [r2 + 8]
    STORE  r5, [r2 + 16]
    FLOAD  f1, [r2 + 0]
    FADD   f0, f0, f1
    CVTIF  f2, r2
    VADD   v0, v1, v2
    VBROADCAST v1, f0
    VREDUCE f3, v0
    BEQ    r2, r3, end
    LOOPNZ r1, loop
end:
    HALT
"""


class TestAssemble:
    def test_sample_assembles(self):
        program = assemble(SAMPLE)
        assert program.instructions[-1].op == int(Opcode.HALT)
        assert "loop" in program.labels

    def test_label_resolution(self):
        program = assemble(SAMPLE)
        loopnz = [i for i in program.instructions if i.op == int(Opcode.LOOPNZ)][0]
        assert loopnz.imm == program.labels["loop"]

    def test_forward_reference(self):
        program = assemble("JMP end\nNOP\nend:\nHALT")
        assert program.instructions[0].imm == 2

    def test_numeric_target(self):
        program = assemble("BEQ r1, r2, 2\nNOP\nHALT")
        assert program.instructions[0].imm == 2

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("\n; only a comment\nNOP ; trailing\n\nHALT\n")
        assert len(program) == 2

    def test_case_insensitive_mnemonics(self):
        program = assemble("movi r1, 5\nhalt")
        assert program.instructions[0].op == int(Opcode.MOVI)

    def test_negative_memory_offset(self):
        program = assemble("MOVI r1, 100\nLOAD r2, [r1 - 4]\nHALT")
        assert program.instructions[1].imm == -4

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblyError):
            assemble("FROB r1, r2, r3")

    def test_unknown_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("JMP nowhere\nHALT")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nNOP\nx:\nHALT")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblyError):
            assemble("ADD r1, r2")

    def test_wrong_register_file_raises(self):
        with pytest.raises(AssemblyError):
            assemble("FADD r0, f1, f2")

    def test_bad_memory_operand_raises(self):
        with pytest.raises(AssemblyError):
            assemble("LOAD r1, [f2 + 3]")

    def test_register_out_of_range_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):  # surfaces as a validation error
            assemble("VADD v9, v0, v1\nHALT")


class TestDisassemble:
    def test_round_trip_bytes_identical(self):
        program = assemble(SAMPLE)
        again = assemble(disassemble(program))
        assert encode_program(again) == encode_program(program)

    def test_branch_targets_get_labels(self):
        text = disassemble(assemble(SAMPLE))
        assert "L" in text
        assert "LOOPNZ" in text

    def test_str_is_disassembly(self):
        program = assemble("NOP\nHALT")
        assert "NOP" in str(program)
