"""Centralization-model tests."""

import pytest

from repro.analysis.market import CentralizationResult, centralization_study, gini
from repro.errors import ReproError


class TestGini:
    def test_equal_shares_zero(self):
        assert gini([0.25] * 4) == pytest.approx(0.0, abs=1e-12)

    def test_single_holder_maximal(self):
        value = gini([0.0] * 9 + [1.0])
        assert value == pytest.approx(0.9, abs=1e-9)  # (n-1)/n for n=10

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))

    def test_monotone_in_concentration(self):
        assert gini([0.4, 0.3, 0.3]) < gini([0.8, 0.1, 0.1])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            gini([-0.1, 1.1])

    def test_all_zero_is_zero(self):
        assert gini([0.0, 0.0]) == 0.0


class TestCentralizationStudy:
    def test_no_advantage_attacker_stays_proportional(self):
        result = centralization_study(1.0, n_home_miners=50,
                                      attacker_budget_rate=10.0, blocks=1500)
        # 10 / (50 + 10) ≈ 0.167: capital share, nothing more.
        assert result.attacker_share_expected == pytest.approx(1 / 6)
        assert result.attacker_share_simulated == pytest.approx(1 / 6, abs=0.04)

    def test_sha_like_advantage_captures_network(self):
        result = centralization_study(90.0, n_home_miners=50,
                                      attacker_budget_rate=10.0, blocks=1500)
        assert result.attacker_share_expected > 0.9
        assert result.attacker_share_simulated > 0.85
        assert result.revenue_gini > 0.8

    def test_centralization_monotone_in_advantage(self):
        shares = [
            centralization_study(a, blocks=1200, seed=5).attacker_share_simulated
            for a in (1.0, 4.0, 20.0)
        ]
        assert shares[0] < shares[1] < shares[2]

    def test_gini_reflects_concentration(self):
        fair = centralization_study(1.0, blocks=1500, seed=7)
        skewed = centralization_study(50.0, blocks=1500, seed=7)
        assert skewed.revenue_gini > fair.revenue_gini

    def test_invalid_advantage_rejected(self):
        with pytest.raises(ReproError):
            centralization_study(0.5)

    def test_invalid_market_rejected(self):
        with pytest.raises(ReproError):
            centralization_study(2.0, n_home_miners=0)

    def test_result_dataclass(self):
        result = CentralizationResult(1.0, 0.1, 0.11, 0.2)
        assert result.advantage == 1.0
