"""Timing-model behaviour: the microarchitectural effects the paper's
figures depend on must actually move IPC in the simulator."""

import dataclasses

import pytest

from repro.isa.builder import ProgramBuilder
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.cpu import Machine


def ipc_of(build_fn, config=None, memory_setup=None):
    b = ProgramBuilder()
    build_fn(b)
    machine = Machine(config or MachineConfig())
    memory = machine.new_memory()
    if memory_setup:
        memory_setup(memory)
    return machine.run(b.build(), memory).counters


class TestWidthAndDependencies:
    def test_independent_ops_reach_issue_width(self):
        def body(b):
            with b.loop(1, 2000):
                b.addi(2, 2, 1)
                b.addi(3, 3, 1)
                b.addi(4, 4, 1)
                b.addi(5, 5, 1)
                b.addi(6, 6, 1)
                b.addi(7, 7, 1)
        counters = ipc_of(body)
        assert counters.ipc > 3.0

    def test_serial_chain_limits_ipc_to_one(self):
        def body(b):
            with b.loop(1, 2000):
                b.addi(2, 2, 1)
                b.addi(2, 2, 1)
                b.addi(2, 2, 1)
                b.addi(2, 2, 1)
        counters = ipc_of(body)
        assert counters.ipc < 1.3

    def test_divide_chain_is_much_slower(self):
        def fast(b):
            with b.loop(1, 500):
                b.add(2, 2, 3)
        def slow(b):
            with b.loop(1, 500):
                b.div(2, 2, 3)
        assert ipc_of(slow).ipc < ipc_of(fast).ipc / 5

    def test_wider_machine_helps_parallel_code(self):
        def body(b):
            with b.loop(1, 2000):
                for reg in range(2, 10):
                    b.addi(reg, reg, 1)
        narrow = dataclasses.replace(MachineConfig(), issue_width=1)
        assert ipc_of(body).ipc > 2.5 * ipc_of(body, narrow).ipc


class TestBranchTiming:
    def test_unpredictable_branches_cost_cycles(self):
        def predictable(b):
            b.movi(6, 0)
            with b.loop(1, 3000):
                b.addi(2, 2, 1)
                b.andi(3, 2, 0)      # always 0
                with b.if_eq(3, 6):
                    b.addi(4, 4, 1)
        def unpredictable(b):
            b.movi(6, 0)
            b.movi(5, 0x9E3779B9)
            with b.loop(1, 3000):
                # xorshift bit decides the branch: ~50/50 random
                b.shli(7, 5, 13)
                b.xor(5, 5, 7)
                b.shri(7, 5, 7)
                b.xor(5, 5, 7)
                b.andi(3, 5, 1)
                with b.if_eq(3, 6):
                    b.addi(4, 4, 1)
        p = ipc_of(predictable)
        u = ipc_of(unpredictable)
        assert p.branch_accuracy > 0.97
        assert u.branch_accuracy < 0.85
        assert u.ipc < p.ipc

    def test_mispredict_penalty_config_matters(self):
        def body(b):
            b.movi(6, 0)
            b.movi(5, 12345)
            with b.loop(1, 2000):
                b.mul(5, 5, 5)
                b.addi(5, 5, 17)
                b.andi(3, 5, 1)
                with b.if_eq(3, 6):
                    b.addi(4, 4, 1)
        cheap = dataclasses.replace(MachineConfig(), mispredict_penalty=0)
        expensive = dataclasses.replace(MachineConfig(), mispredict_penalty=40)
        assert ipc_of(body, cheap).ipc > ipc_of(body, expensive).ipc


class TestMemoryTiming:
    def test_cache_miss_chain_slows_execution(self):
        # Pointer chase over 8 MiB vs over 2 KiB.
        def chase(b):
            b.movi(5, 0)
            with b.loop(1, 4000):
                b.load(5, 5, 0)
        def small_setup(memory):
            memory.fill_pointer_ring(1, 0, 256)
        def big_setup(memory):
            memory.fill_pointer_ring(1, 0, 1 << 20)
        small = ipc_of(chase, memory_setup=small_setup)
        big = ipc_of(chase, memory_setup=big_setup)
        assert big.ipc < small.ipc / 3
        assert big.dram_accesses > 1000
        assert small.l1_hit_rate > 0.9

    def test_rob_limits_miss_overlap(self):
        # With a tiny ROB, a DRAM miss stalls dispatch; with a huge ROB,
        # independent work continues underneath.
        def body(b):
            b.movi(5, 0)
            with b.loop(1, 300):
                b.load(6, 5, 0)       # miss (cold, strided)
                b.addi(5, 5, 4096)
                for _ in range(20):
                    b.addi(2, 2, 1)   # independent filler
        tiny = dataclasses.replace(MachineConfig(), rob_size=4)
        huge = dataclasses.replace(MachineConfig(), rob_size=4096)
        assert ipc_of(body, huge).ipc > 1.5 * ipc_of(body, tiny).ipc


class TestCountersConsistency:
    def test_class_counts_sum_to_retired(self):
        def body(b):
            with b.loop(1, 100):
                b.addi(2, 2, 1)
                b.mul(3, 2, 2)
                b.fadd(0, 0, 1)
                b.store(2, 2, 0)
                b.load(4, 2, 0)
                b.vadd(0, 1, 2)
        counters = ipc_of(body)
        assert sum(counters.class_counts) == counters.retired

    def test_loads_stores_counted(self):
        def body(b):
            with b.loop(1, 50):
                b.store(2, 2, 0)
                b.load(3, 2, 0)
                b.load(4, 2, 8)
        counters = ipc_of(body)
        assert counters.loads == 100
        assert counters.stores == 50

    def test_taken_plus_not_taken_equals_branches(self):
        def body(b):
            b.movi(6, 0)
            with b.loop(1, 64):
                b.andi(3, 1, 1)
                with b.if_eq(3, 6):
                    b.nop()
        counters = ipc_of(body)
        assert counters.taken <= counters.branches
        assert counters.mispredicts <= counters.branches

    def test_cycles_positive_and_ipc_bounded_by_width(self):
        def body(b):
            with b.loop(1, 500):
                b.addi(2, 2, 1)
        counters = ipc_of(body)
        assert counters.cycles > 0
        assert counters.ipc <= MachineConfig().issue_width + 1e-9


class TestColdState:
    def test_runs_are_independent(self):
        def body(b):
            b.movi(5, 0)
            with b.loop(1, 500):
                b.load(6, 5, 0)
                b.addi(5, 5, 64)
        b = ProgramBuilder()
        body(b)
        program = b.build()
        machine = Machine()
        first = machine.run(program).counters
        second = machine.run(program).counters
        # Same cold caches both times -> identical timing.
        assert first.cycles == second.cycles
        assert first.l1_hits == second.l1_hits
