"""PerformanceProfile and profiler tests."""

import pytest

from repro.errors import ProfileError
from repro.isa.opcodes import OpClass
from repro.machine.cpu import Machine
from repro.profiling import PerformanceProfile, profile_program, profile_workload
from repro.workloads import LeelaWorkload


@pytest.fixture(scope="module")
def live_profile(machine):
    return profile_workload(LeelaWorkload(), machine)


class TestProfileExtraction:
    def test_mix_sums_to_one(self, live_profile):
        assert abs(sum(live_profile.instruction_mix.values()) - 1.0) < 1e-9

    def test_histograms_normalised(self, live_profile):
        assert abs(sum(live_profile.dep_distance_hist) - 1.0) < 1e-9
        assert abs(sum(live_profile.stride_hist) - 1.0) < 1e-9

    def test_rates_in_range(self, live_profile):
        for value in (
            live_profile.branch_taken_rate,
            live_profile.branch_accuracy,
            live_profile.biased_branch_fraction,
            live_profile.l1_hit_rate,
        ):
            assert 0.0 <= value <= 1.0

    def test_extras_capture_divide_share(self, live_profile):
        # Leela's int-multiply class is dominated by the per-move MOD.
        assert live_profile.extras["div_share"] > 0.5

    def test_machine_recorded(self, live_profile):
        assert live_profile.machine == "ivy-bridge-like"

    def test_mix_fraction_accessor(self, live_profile):
        assert live_profile.mix_fraction(OpClass.INT_ALU) == pytest.approx(
            live_profile.instruction_mix["int_alu"]
        )

    def test_profiling_is_deterministic(self, machine):
        a = profile_workload(LeelaWorkload(), machine)
        b = profile_workload(LeelaWorkload(), machine)
        assert a.to_dict() == b.to_dict()


class TestProfileProgram:
    def test_profile_arbitrary_program(self, machine):
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder("tiny")
        with b.loop(1, 1000):
            b.addi(2, 2, 1)
            b.mul(3, 2, 2)
        profile = profile_program(b.build(), machine, name="tiny")
        assert profile.name == "tiny"
        assert profile.instruction_mix["int_mul"] > 0.2


class TestSerialization:
    def test_json_round_trip(self, live_profile):
        text = live_profile.to_json()
        again = PerformanceProfile.from_json(text)
        assert again.to_dict() == live_profile.to_dict()

    def test_unknown_schema_rejected(self, live_profile):
        data = live_profile.to_dict()
        data["schema"] = 99
        with pytest.raises(ProfileError):
            PerformanceProfile.from_dict(data)


class TestValidation:
    def _base(self, live_profile) -> dict:
        return live_profile.to_dict()

    def test_bad_mix_sum_rejected(self, live_profile):
        data = self._base(live_profile)
        data["instruction_mix"]["int_alu"] += 0.5
        with pytest.raises(ProfileError):
            PerformanceProfile.from_dict(data)

    def test_missing_class_rejected(self, live_profile):
        data = self._base(live_profile)
        del data["instruction_mix"]["vector"]
        with pytest.raises(ProfileError):
            PerformanceProfile.from_dict(data)

    def test_out_of_range_rate_rejected(self, live_profile):
        data = self._base(live_profile)
        data["branch_taken_rate"] = 1.5
        with pytest.raises(ProfileError):
            PerformanceProfile.from_dict(data)

    def test_wrong_hist_size_rejected(self, live_profile):
        data = self._base(live_profile)
        data["dep_distance_hist"] = [1.0]
        with pytest.raises(ProfileError):
            PerformanceProfile.from_dict(data)

    def test_zero_instructions_rejected(self, live_profile):
        data = self._base(live_profile)
        data["dynamic_instructions"] = 0
        with pytest.raises(ProfileError):
            PerformanceProfile.from_dict(data)


class TestDefaultProfile:
    def test_default_profile_matches_measurement(self, machine, leela_profile):
        """The baked consensus profile must equal a fresh measurement —
        drift here would silently change every HashCore hash."""
        from repro.core.default_profile import measure_default_profile

        measured = measure_default_profile()
        baked = leela_profile.to_dict()
        fresh = measured.to_dict()
        assert baked == fresh

    def test_default_profile_cached(self):
        from repro.core.default_profile import default_profile

        assert default_profile() is default_profile()
