"""PoW target arithmetic tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pow import (
    MAX_TARGET,
    compact_to_target,
    difficulty_to_target,
    hash_to_int,
    leading_zero_bits,
    meets_target,
    target_to_compact,
    target_to_difficulty,
)
from repro.errors import PowError


class TestTargets:
    def test_max_target_accepts_everything(self):
        assert meets_target(b"\xff" * 32, MAX_TARGET)

    def test_small_target_rejects_large_hash(self):
        assert not meets_target(b"\xff" * 32, 1000)

    def test_boundary_inclusive(self):
        digest = (1000).to_bytes(32, "big")
        assert meets_target(digest, 1000)
        assert not meets_target(digest, 999)

    def test_bad_target_rejected(self):
        with pytest.raises(PowError):
            meets_target(b"\x00" * 32, 0)

    def test_bad_digest_length_rejected(self):
        with pytest.raises(PowError):
            hash_to_int(b"\x00" * 31)


class TestDifficulty:
    def test_difficulty_one_is_max_target(self):
        assert difficulty_to_target(1.0) == MAX_TARGET

    def test_round_trip(self):
        target = difficulty_to_target(1234.0)
        assert target_to_difficulty(target) == pytest.approx(1234.0, rel=1e-9)

    def test_higher_difficulty_lower_target(self):
        assert difficulty_to_target(100) < difficulty_to_target(10)

    def test_sub_one_difficulty_rejected(self):
        with pytest.raises(PowError):
            difficulty_to_target(0.5)


class TestCompactBits:
    def test_bitcoin_genesis_bits(self):
        # Bitcoin's genesis nBits 0x1d00ffff encodes the canonical target.
        target = compact_to_target(0x1D00FFFF)
        assert target == 0xFFFF << (8 * (0x1D - 3))
        assert target_to_compact(target) == 0x1D00FFFF

    def test_regtest_bits(self):
        target = compact_to_target(0x207FFFFF)
        assert target_to_compact(target) == 0x207FFFFF

    def test_negative_flag_rejected(self):
        with pytest.raises(PowError):
            compact_to_target(0x1D800000 | 0x00800001)

    def test_zero_mantissa_rejected(self):
        with pytest.raises(PowError):
            compact_to_target(0x1D000000)

    def test_small_targets(self):
        for target in (1, 255, 256, 65535, 65536):
            decoded = compact_to_target(target_to_compact(target))
            # Compact form keeps 3 significant bytes: small values exact.
            assert decoded == target

    @given(st.integers(min_value=1, max_value=MAX_TARGET))
    def test_round_trip_within_mantissa_precision(self, target):
        decoded = compact_to_target(target_to_compact(target))
        # The compact format keeps 23-24 bits of mantissa.
        assert decoded <= target
        assert decoded >= target - (target >> 15)

    @given(st.integers(min_value=1, max_value=MAX_TARGET))
    def test_encode_is_idempotent(self, target):
        compact = target_to_compact(target)
        assert target_to_compact(compact_to_target(compact)) == compact


class TestLeadingZeroBits:
    def test_all_zero_digest(self):
        assert leading_zero_bits(b"\x00" * 32) == 256

    def test_top_bit_set(self):
        assert leading_zero_bits(b"\x80" + b"\x00" * 31) == 0

    def test_one_leading_zero_byte(self):
        assert leading_zero_bits(b"\x00\xff" + b"\x00" * 30) == 8
