"""Reference-workload tests: each must exhibit its SPEC-class behaviour."""

import pytest

from repro.errors import ConfigError
from repro.machine.cpu import Machine
from repro.workloads import (
    SUITE,
    CompressWorkload,
    GraphWorkload,
    LeelaWorkload,
    MatrixWorkload,
    get_workload,
)
from repro.workloads.base import MemoryDirective


@pytest.fixture(scope="module")
def results(machine):
    """Run every workload once at scale 1 (module-cached)."""
    out = {}
    for name in SUITE:
        image = get_workload(name).build(scale=1)
        out[name] = image.run(machine, collect_detail=True)
    return out


class TestRegistry:
    def test_suite_contains_all_five(self):
        assert set(SUITE) == {"leela", "compress", "matrix", "graph", "media"}

    def test_get_workload_unknown_raises(self):
        with pytest.raises(ConfigError):
            get_workload("specjbb")

    def test_spec_counterparts_documented(self):
        for cls in SUITE.values():
            assert cls.spec_counterpart


class TestExecution:
    def test_all_workloads_halt(self, results):
        for name, result in results.items():
            assert result.halted, name

    def test_all_workloads_substantial(self, results):
        for name, result in results.items():
            assert result.counters.retired > 100_000, name

    def test_scale_increases_work(self, machine):
        small = LeelaWorkload().build(scale=1).run(machine)
        large = LeelaWorkload().build(scale=2).run(machine)
        assert 1.8 < large.counters.retired / small.counters.retired < 2.2

    def test_scale_zero_rejected(self):
        with pytest.raises(ConfigError):
            LeelaWorkload().build(scale=0)

    def test_deterministic(self, machine):
        a = CompressWorkload().build().run(machine)
        b = CompressWorkload().build().run(machine)
        assert a.iregs == b.iregs
        assert a.counters.cycles == b.counters.cycles


class TestLeelaCharacter:
    """Leela must look like SPEC's leela: branchy integer code."""

    def test_integer_dominated(self, results):
        mix = results["leela"].counters.mix_fractions()
        assert mix["int_alu"] > 0.5
        assert mix["fp_alu"] < 0.05

    def test_branch_heavy(self, results):
        assert results["leela"].counters.mix_fractions()["branch"] > 0.10

    def test_moderate_ipc(self, results):
        assert 0.7 < results["leela"].counters.ipc < 1.6

    def test_realistic_branch_accuracy(self, results):
        # Real leela sits near 92% on Ivy-Bridge-class predictors.
        assert 0.85 < results["leela"].counters.branch_accuracy < 0.97

    def test_cache_friendly(self, results):
        assert results["leela"].counters.l1_hit_rate > 0.9


class TestCompressCharacter:
    def test_load_store_heavy(self, results):
        mix = results["compress"].counters.mix_fractions()
        assert mix["load"] > 0.12

    def test_worse_locality_than_leela(self, results):
        assert (
            results["compress"].counters.l1_hit_rate
            < results["leela"].counters.l1_hit_rate
        )

    def test_matches_occur(self, results):
        # The hash-chain must actually find matches (extension loop runs):
        # visible as a wider spread of block sizes.
        assert results["compress"].counters.retired > 400_000


class TestMatrixCharacter:
    def test_fp_vector_dominated(self, results):
        mix = results["matrix"].counters.mix_fractions()
        assert mix["fp_alu"] + mix["vector"] > 0.5

    def test_high_ilp(self, results):
        assert results["matrix"].counters.ipc > 1.8

    def test_predictable_branches(self, results):
        assert results["matrix"].counters.branch_accuracy > 0.98


class TestGraphCharacter:
    def test_latency_bound(self, results):
        assert results["graph"].counters.ipc < 0.5

    def test_poor_locality(self, results):
        assert results["graph"].counters.l1_hit_rate < 0.5

    def test_dram_traffic(self, results):
        assert results["graph"].counters.dram_accesses > 1000


class TestMediaCharacter:
    def test_integer_and_load_heavy(self, results):
        mix = results["media"].counters.mix_fractions()
        assert mix["int_alu"] > 0.6
        assert mix["load"] > 0.12

    def test_moderate_ipc(self, results):
        # Branchless SAD gives ILP; scattered candidate reads cost misses.
        assert 0.8 < results["media"].counters.ipc < 2.2

    def test_data_dependent_branches(self, results):
        # Early-exit and new-best branches are data dependent: accuracy
        # sits below the loop-dominated matrix workload's.
        assert results["media"].counters.branch_accuracy < 0.97


class TestSuiteDiversity:
    """The suite must span the behaviour space, like SPEC does."""

    def test_ipc_spread(self, results):
        ipcs = sorted(r.counters.ipc for r in results.values())
        assert ipcs[-1] / max(ipcs[0], 1e-9) > 4

    def test_distinct_mixes(self, results):
        mixes = [tuple(round(v, 2) for v in r.counters.mix_fractions().values())
                 for r in results.values()]
        assert len(set(mixes)) == len(mixes)


class TestMemoryDirective:
    def test_unknown_kind_rejected(self):
        from repro.machine.memory import Memory

        with pytest.raises(ConfigError):
            MemoryDirective("banana", 0, 0, 10).apply(Memory(64))
