"""Statistical properties of the widget population — the unit-test-scale
versions of the paper's Figures 2/3 and §V observations.

These use the shared 12-widget population (test-scale widgets), so bands
are deliberately generous; the benchmark harness reruns the experiments at
full scale with tight reporting.
"""

import statistics

import pytest

from repro.analysis.stats import summarize


@pytest.fixture(scope="module")
def counters(widget_population):
    return [result.counters for _, result in widget_population]


class TestFigure2Shape:
    """Widget IPC distributes around the reference workload's IPC."""

    def test_ipc_mean_near_reference(self, counters, leela_profile):
        # Test-scale widgets (6 k instructions) are cold-start-miss
        # dominated, so the band is wide here; the Figure 2 bench at the
        # default 60 k scale shows the tight match (mean slightly below
        # the reference, per the paper).
        mean = statistics.mean(c.ipc for c in counters)
        assert 0.25 * leela_profile.ipc < mean < 1.6 * leela_profile.ipc

    def test_ipc_has_spread(self, counters):
        # The seed noise must produce a *distribution*, not a point mass.
        assert statistics.stdev(c.ipc for c in counters) > 0.02

    def test_ipc_spread_bounded(self, counters, leela_profile):
        summary = summarize([c.ipc for c in counters])
        assert summary.maximum < 3 * leela_profile.ipc
        assert summary.minimum > 0.15 * leela_profile.ipc


class TestFigure3Shape:
    """Widget branch-prediction accuracy near the reference workload's."""

    def test_accuracy_mean_near_reference(self, counters, leela_profile):
        mean = statistics.mean(c.branch_accuracy for c in counters)
        assert abs(mean - leela_profile.branch_accuracy) < 0.08

    def test_taken_rate_near_reference(self, counters, leela_profile):
        mean = statistics.mean(c.taken_rate for c in counters)
        assert abs(mean - leela_profile.branch_taken_rate) < 0.10


class TestMixNoise:
    """§V-B: positive-only noise — widget branch fraction at or below the
    profile's, compute classes at or above."""

    def test_branch_fraction_not_above_profile(self, counters, leela_profile):
        mean_branch = statistics.mean(c.mix_fractions()["branch"] for c in counters)
        assert mean_branch <= leela_profile.instruction_mix["branch"] * 1.15

    def test_mix_tracks_profile(self, counters, leela_profile):
        for key in ("int_alu", "load", "store"):
            mean = statistics.mean(c.mix_fractions()[key] for c in counters)
            assert mean == pytest.approx(
                leela_profile.instruction_mix[key], abs=0.12
            ), key


class TestOutputSizes:
    """§V: output sizes vary across seeds within a bounded band (the paper
    reports 20-38 KB at its scale — a ~1.9x spread)."""

    def test_sizes_vary(self, widget_population):
        sizes = {result.output_size for _, result in widget_population}
        assert len(sizes) > 1

    def test_size_band_ratio(self, widget_population):
        sizes = [result.output_size for _, result in widget_population]
        assert max(sizes) / min(sizes) < 2.6

    def test_outputs_nonempty_and_distinct(self, widget_population):
        outputs = [result.output for _, result in widget_population]
        assert all(outputs)
        assert len({o[:64] for o in outputs}) == len(outputs)


class TestExecutionDiscipline:
    def test_all_widgets_halt_within_fuse(self, widget_population):
        # execute() would raise ExecutionLimitExceeded otherwise; verify
        # the realised sizes also sit near the spec's expectation.
        for widget, result in widget_population:
            expected = widget.spec.expected_instructions()
            assert 0.5 * expected < result.counters.retired < 2.0 * expected

    def test_snapshot_cadence_matches_params(self, widget_population, test_params):
        for widget, result in widget_population:
            expected = result.counters.retired // test_params.snapshot_interval
            assert abs(result.snapshots - 1 - expected) <= 1
