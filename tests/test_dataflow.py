"""CFG / liveness / dead-code-elimination tests — the §IV-A reduction
adversary must be sound (never change observable results) and effective
(actually remove dead code), and widgets must resist it."""

import pytest
from hypothesis import given, settings

from repro.isa.builder import ProgramBuilder
from repro.isa.dataflow import (
    ALL_REGS,
    SNAPSHOT_REGS,
    build_cfg,
    eliminate_dead_code,
    liveness,
    uses_defs,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.cpu import Machine

from tests.conftest import seed_of
from tests.test_differential import programs


def _final_only(*regs):
    """Live-out set: only the named integer registers observed."""
    return frozenset(("r", r) for r in regs)


class TestUsesDefs:
    def test_every_opcode_covered(self):
        for op in Opcode:
            ins = Instruction(int(op), 0, 0, 0, 0)
            uses, defs = uses_defs(ins)
            assert isinstance(uses, set) and isinstance(defs, set)

    def test_fma_reads_its_destination(self):
        uses, defs = uses_defs(Instruction(int(Opcode.FMA), 1, 2, 3))
        assert ("f", 1) in uses and ("f", 1) in defs

    def test_store_has_no_defs(self):
        uses, defs = uses_defs(Instruction(int(Opcode.STORE), 1, 2, 0, 8))
        assert defs == set()
        assert ("r", 1) in uses and ("r", 2) in uses

    def test_cross_file_ops(self):
        uses, defs = uses_defs(Instruction(int(Opcode.CVTIF), 3, 5))
        assert uses == {("r", 5)} and defs == {("f", 3)}
        uses, defs = uses_defs(Instruction(int(Opcode.VREDUCE), 2, 4))
        assert uses == {("v", 4)} and defs == {("f", 2)}


class TestCfg:
    def test_straight_line_single_block(self):
        b = ProgramBuilder()
        b.movi(1, 5)
        b.addi(1, 1, 1)
        program = b.build()
        blocks = build_cfg(program)
        assert len(blocks) == 1
        assert blocks[0].successors == []

    def test_loop_creates_back_edge(self):
        b = ProgramBuilder()
        with b.loop(1, 5):
            b.addi(2, 2, 1)
        program = b.build()
        blocks = build_cfg(program)
        back_edges = [
            (i, s) for i, blk in enumerate(blocks) for s in blk.successors if s <= i
        ]
        assert back_edges

    def test_conditional_has_two_successors(self):
        b = ProgramBuilder()
        b.movi(1, 1)
        b.movi(2, 2)
        with b.if_eq(1, 2):
            b.movi(3, 3)
        b.movi(4, 4)
        program = b.build()
        blocks = build_cfg(program)
        branch_blocks = [blk for blk in blocks if len(blk.successors) == 2]
        assert branch_blocks


class TestDce:
    def test_removes_dead_write(self):
        b = ProgramBuilder()
        b.movi(1, 10)   # dead: overwritten before any read
        b.movi(1, 20)
        b.movi(2, 5)    # dead if only r1 observed
        program = b.build()
        report = eliminate_dead_code(program, live_out=_final_only(1))
        assert report.removed >= 2

    def test_keeps_live_chain(self):
        b = ProgramBuilder()
        b.movi(1, 10)
        b.addi(2, 1, 5)
        b.add(3, 2, 1)
        program = b.build()
        report = eliminate_dead_code(program, live_out=_final_only(3))
        assert report.removed == 0

    def test_keeps_stores_and_branches(self):
        b = ProgramBuilder()
        b.movi(1, 1)
        b.store(1, 1, 0)
        with b.loop(2, 3):
            b.nop()
        program = b.build()
        report = eliminate_dead_code(program, live_out=frozenset())
        kept_ops = {ins.op for ins in report.program.instructions}
        assert int(Opcode.STORE) in kept_ops
        assert int(Opcode.LOOPNZ) in kept_ops

    def test_removes_nops(self):
        b = ProgramBuilder()
        b.nop()
        b.nop()
        b.movi(1, 1)
        program = b.build()
        report = eliminate_dead_code(program, live_out=_final_only(1))
        assert report.removed == 2

    def test_iterates_to_fixpoint(self):
        # r1 feeds r2 feeds r3; only r0 observed -> all three die, but only
        # across multiple rounds.
        b = ProgramBuilder()
        b.movi(1, 1)
        b.addi(2, 1, 1)
        b.addi(3, 2, 1)
        b.movi(0, 9)
        program = b.build()
        report = eliminate_dead_code(program, live_out=_final_only(0))
        assert report.removed == 3

    def test_observe_everywhere_keeps_all_but_nops(self):
        b = ProgramBuilder()
        b.movi(1, 10)  # dead under final-state analysis
        b.movi(1, 20)
        b.nop()
        program = b.build()
        report = eliminate_dead_code(program, observe_everywhere=True)
        assert report.removed == 1  # only the NOP

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_soundness_on_random_programs(self, instructions):
        """Optimized programs must produce identical observable state."""
        program = Program(instructions=instructions + [Instruction(int(Opcode.HALT))])
        program.validate()
        machine = Machine(Machine().config.scaled_memory(1 << 16))
        original = machine.run(program, max_instructions=2000)
        report = eliminate_dead_code(program, live_out=SNAPSHOT_REGS)
        optimized = machine.run(report.program, max_instructions=2000)
        assert optimized.iregs == original.iregs
        assert optimized.fregs == original.fregs


class TestWidgetIrreducibility:
    """The E12 claim at unit scale: widgets resist the DCE attack."""

    def test_snapshots_make_widgets_fully_irreducible(self, generator):
        widget = generator.widget(seed_of("dce"))
        report = eliminate_dead_code(widget.program, observe_everywhere=True)
        assert report.removed == 0  # widgets contain no NOPs

    def test_even_final_state_analysis_removes_almost_nothing(self, generator, machine):
        # Even granting the attacker a weaker observation model (final
        # architectural state only, no snapshots), dependency chaining
        # leaves only a few percent dead — overwritten-before-read
        # stragglers at loop tails.
        widget = generator.widget(seed_of("dce2"))
        report = eliminate_dead_code(widget.program, live_out=frozenset(ALL_REGS))
        assert report.removed_fraction < 0.12
        # And whatever it removed must be sound: run both programs on the
        # widget's memory image and compare final register state.
        memory_a = machine.new_memory()
        memory_b = machine.new_memory()
        for directive in widget.spec.plan.directives():
            directive.apply(memory_a)
            directive.apply(memory_b)
        fuse = int(widget.spec.meta["fuse"])
        original = machine.run(widget.program, memory_a, max_instructions=fuse)
        optimized = machine.run(report.program, memory_b, max_instructions=fuse)
        assert optimized.iregs == original.iregs
        assert optimized.fregs == original.fregs
