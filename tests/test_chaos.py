"""Chaos harness tests: fault model, forgery, invariants, replay, soak.

The expensive property here is *determinism under faults*: one seed fully
decides every drop, jitter roll, partition cut, crash, and forged block,
so a failing soak seed is a complete, replayable bug report.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sha256d import Sha256d
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.faults import (
    BYZANTINE_KINDS,
    ByzantinePeer,
    Crash,
    LinkFaults,
    Partition,
    Scenario,
    random_scenario,
)
from repro.blockchain.miner import mine_block
from repro.blockchain.node import Node
from repro.blockchain.sim import ChaosRunner, forge_block
from repro.core.pow import MAX_TARGET, target_to_compact
from repro.errors import ChainError
from repro.rng import Xoshiro256, splitmix64


class TestFaultModel:
    def test_link_faults_validate(self):
        with pytest.raises(ChainError):
            LinkFaults(delay=0)
        with pytest.raises(ChainError):
            LinkFaults(drop=0.95)  # a >0.9 drop rate can never converge
        with pytest.raises(ChainError):
            LinkFaults(duplicate=1.5)

    def test_partition_validates(self):
        with pytest.raises(ChainError):
            Partition(start=10, end=10, groups=((0,), (1,)))
        with pytest.raises(ChainError):
            Partition(start=1, end=9, groups=((0, 1),))
        with pytest.raises(ChainError):
            Partition(start=1, end=9, groups=((0, 1), (1, 2)))

    def test_partition_severed_semantics(self):
        part = Partition(start=10, end=20, groups=((0, 1), (2,)))
        assert part.severed(0, 2, 10)
        assert part.severed(2, 1, 19)
        assert not part.severed(0, 1, 15)   # same group
        assert not part.severed(0, 2, 9)    # before the window
        assert not part.severed(0, 2, 20)   # healed
        assert not part.severed(0, 3, 15)   # node 3 is in no group: unaffected

    def test_crash_validates(self):
        with pytest.raises(ChainError):
            Crash(node=0, at=10, restart_at=10)

    def test_byzantine_validates(self):
        with pytest.raises(ChainError):
            ByzantinePeer(kinds=("bad-karma",))
        with pytest.raises(ChainError):
            ByzantinePeer(every=0)

    def test_scenario_validates(self):
        with pytest.raises(ChainError):
            Scenario(n_nodes=1)
        with pytest.raises(ChainError):
            Scenario(n_nodes=4, crashes=(Crash(node=9, at=5, restart_at=9),))
        with pytest.raises(ChainError):
            Scenario(
                n_nodes=4,
                partitions=(Partition(start=1, end=5, groups=((0,), (9,))),),
            )
        with pytest.raises(ChainError):
            Scenario(n_nodes=3, hashrates=(1.0, 2.0))  # wrong arity
        with pytest.raises(ChainError):
            # Partition heals at 190, leaving < convergence_ticks of quiet.
            Scenario(
                ticks=200,
                partitions=(Partition(start=10, end=190, groups=((0,), (1,))),),
            )

    def test_scenario_json_round_trip(self):
        scenario = Scenario(
            n_nodes=5,
            seed=42,
            ticks=260,
            link=LinkFaults(delay=2, jitter=3, drop=0.1, duplicate=0.05),
            partitions=(
                Partition(start=20, end=50, groups=((0, 1), (2, 3, 4))),
            ),
            crashes=(Crash(node=3, at=25, restart_at=60),),
            byzantine=(ByzantinePeer(every=6, kinds=("bad-pow", "bad-merkle")),),
            hashrates=(3.0, 1.0, 1.0, 1.0, 2.0),
            mine_until=160,
        )
        wire = json.dumps(scenario.to_dict())  # schedules are data
        assert Scenario.from_dict(json.loads(wire)) == scenario

    def test_random_scenario_is_seed_deterministic(self):
        assert random_scenario(123) == random_scenario(123)
        seen = {random_scenario(s) for s in range(20)}
        assert len(seen) > 10  # the fuzzer actually varies structure


class TestForgery:
    def _chain(self, difficulty=8.0):
        from repro.core.pow import difficulty_to_target

        return Blockchain(
            Sha256d(),
            genesis_bits=target_to_compact(difficulty_to_target(difficulty)),
        )

    def _rng(self):
        return Xoshiro256(splitmix64(99))

    @pytest.mark.parametrize("kind", [k for k in BYZANTINE_KINDS
                                      if k != "bad-timestamp"])
    def test_forged_block_rejected_with_matching_code(self, kind):
        chain = self._chain()
        forged, actual = forge_block(kind, chain, Sha256d(), self._rng(), 30)
        assert actual == kind
        node = Node("n", Sha256d(), genesis_bits=chain.tip().header.bits)
        result = node.receive(forged)
        assert result.status == "rejected"
        assert result.code == kind

    def test_bad_timestamp_needs_nonzero_parent_time(self):
        chain = self._chain()
        # Genesis timestamp is 0: degrade (can't undercut it)...
        _, actual = forge_block("bad-timestamp", chain, Sha256d(),
                                self._rng(), 30)
        assert actual == "bad-pow"
        # ...but after one real block the skew is possible.
        from repro.blockchain.block import Block

        template = Block.build(chain.tip_id, [b"tx"], 30,
                               chain.expected_bits(chain.tip_id))
        chain.add_block(mine_block(template, Sha256d(),
                                   max_attempts=10_000).block)
        forged, actual = forge_block("bad-timestamp", chain, Sha256d(),
                                     self._rng(), 60)
        assert actual == "bad-timestamp"
        node = Node("n", Sha256d(), genesis_bits=self._chain().tip().header.bits)
        node.receive(chain.get(chain.tip_id))
        assert node.receive(forged).code == "bad-timestamp"

    def test_max_target_degrades_to_bad_merkle(self):
        # At the maximum target every digest "meets" PoW and no easier
        # bits exist, so only a body forgery remains expressible.
        chain = Blockchain(Sha256d(),
                           genesis_bits=target_to_compact(MAX_TARGET))
        for kind in ("bad-pow", "bad-bits"):
            _, actual = forge_block(kind, chain, Sha256d(), self._rng(), 30)
            assert actual == "bad-merkle"


# The acceptance-criteria scenario: lossy links + a two-way partition +
# a byzantine forger, all at once.
ACCEPTANCE = Scenario(
    n_nodes=4,
    seed=7,
    ticks=180,
    link=LinkFaults(delay=1, jitter=2, drop=0.1, duplicate=0.05),
    partitions=(Partition(start=20, end=50, groups=((0, 1), (2, 3))),),
    byzantine=(ByzantinePeer(every=9),),
    convergence_ticks=80,
)


@pytest.mark.chaos
class TestChaosRuns:
    def test_replay_is_byte_identical(self):
        first = ChaosRunner(ACCEPTANCE).run()
        second = ChaosRunner(ACCEPTANCE).run()
        assert first.to_json() == second.to_json()
        assert first.ok()
        assert sum(first.forged.values()) > 0  # the adversary really fired

    def test_different_seed_different_run(self):
        first = ChaosRunner(ACCEPTANCE).run()
        other = ChaosRunner(ACCEPTANCE.with_seed(8)).run()
        assert first.to_json() != other.to_json()

    def test_crash_and_restart_resyncs(self):
        scenario = Scenario(
            n_nodes=3,
            seed=5,
            ticks=170,
            crashes=(Crash(node=1, at=20, restart_at=55),),
            convergence_ticks=80,
        )
        report = ChaosRunner(scenario).run()
        assert report.ok()
        assert report.nodes[1]["crashes"] == 1
        # The restarted node caught back up to the same tip.
        assert report.nodes[1]["tip"] == report.nodes[0]["tip"]

    def test_forgeries_never_enter_chains(self):
        report = ChaosRunner(ACCEPTANCE).run()
        rejected = sum(
            sum(n["rejections"].values()) for n in report.nodes
        )
        assert rejected > 0  # forged blocks reached and were refused
        assert not any(v.startswith("invalid-block") for v in report.violations)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_smoke_seeds(self, seed):
        report = ChaosRunner(random_scenario(seed)).run()
        assert report.ok(), report.violations
        assert report.blocks_mined > 0
        assert report.messages["delivered"] > 0

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_fuzzed_schedules_hold_invariants(self, seed):
        report = ChaosRunner(random_scenario(seed)).run()
        assert report.ok(), (seed, report.violations)


@pytest.mark.chaos
class TestInvariantCheckerCatchesBrokenConsensus:
    def test_disabled_pow_validation_is_detected(self, monkeypatch):
        """Sabotage the chain's PoW check and prove the harness notices.

        Only ``repro.blockchain.chain``'s imported ``meets_target`` is
        patched; the sim module keeps the real one, so the byzantine peer
        still forges genuinely-bad-PoW blocks — which the broken nodes now
        happily accept.
        """
        monkeypatch.setattr(
            "repro.blockchain.chain.meets_target",
            lambda digest, target: True,
        )
        scenario = Scenario(
            n_nodes=3,
            seed=11,
            ticks=140,
            byzantine=(ByzantinePeer(every=5, kinds=("bad-pow",)),),
            mine_until=60,
            convergence_ticks=80,
        )
        report = ChaosRunner(scenario).run()
        assert not report.ok()
        assert any(
            v.startswith("invalid-block: bad-pow") for v in report.violations
        )
