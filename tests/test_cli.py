"""CLI tests (driving ``main(argv)`` directly)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestHashAndVerify:
    def test_hash_prints_digest(self, capsys):
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "hash", "hello"
        )
        assert code == 0
        assert "digest :" in out
        assert "seed   :" in out

    def test_hash_deterministic(self, capsys):
        _, out1, _ = run_cli(capsys, "--instructions", "3000", "hash", "same")
        _, out2, _ = run_cli(capsys, "--instructions", "3000", "hash", "same")
        digest1 = [l for l in out1.splitlines() if l.startswith("digest")][0]
        digest2 = [l for l in out2.splitlines() if l.startswith("digest")][0]
        assert digest1 == digest2

    def test_verify_round_trip(self, capsys):
        _, out, _ = run_cli(capsys, "--instructions", "3000", "hash", "vv")
        digest = [l for l in out.splitlines() if l.startswith("digest")][0].split(": ")[1]
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "verify", "vv", digest
        )
        assert code == 0
        assert "OK" in out

    def test_verify_wrong_digest_fails(self, capsys):
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "verify", "vv", "00" * 32
        )
        assert code == 1
        assert "FAIL" in out

    def test_verify_non_hex_digest_errors(self, capsys):
        code, _, err = run_cli(
            capsys, "--instructions", "3000", "verify", "vv", "zz"
        )
        assert code == 2
        assert "hex" in err

    def test_multi_widget_hash(self, capsys):
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "--widgets", "2", "hash", "multi"
        )
        assert code == 0
        assert out.count("widget :") == 2


class TestWidgetCommand:
    def test_widget_from_hex_seed(self, capsys):
        seed = "ab" * 32
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "widget", seed
        )
        assert code == 0
        assert seed in out
        assert "executed" in out

    def test_widget_from_text(self, capsys):
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "widget", "not-hex-text"
        )
        assert code == 0
        assert "blocks" in out

    def test_widget_asm_dump(self, capsys):
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "widget", "x", "--asm"
        )
        assert code == 0
        assert "LOOPNZ" in out


class TestProfileAndWorkloads:
    def test_workloads_listing(self, capsys):
        code, out, _ = run_cli(capsys, "workloads")
        assert code == 0
        for name in ("leela", "compress", "matrix", "graph"):
            assert name in out

    def test_profile_json(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "leela")
        assert code == 0
        data = json.loads(out)
        assert data["name"] == "leela"
        assert abs(sum(data["instruction_mix"].values()) - 1.0) < 1e-6

    def test_unknown_workload_errors(self, capsys):
        code, _, err = run_cli(capsys, "profile", "nonesuch")
        assert code == 2
        assert "unknown workload" in err


class TestMineAndSimulate:
    def test_mine_short_chain(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "--instructions", "2000",
            "mine", "--difficulty", "2", "--blocks", "1",
        )
        assert code == 0
        assert "chain height 1" in out

    def test_simulate_outputs_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--hashrates", "10,10", "--blocks", "100"
        )
        assert code == 0
        data = json.loads(out)
        assert data["blocks"] == 100
        assert len(data["miner_shares"]) == 2

    def test_machine_preset_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "--machine", "mobile-arm", "--instructions", "3000",
            "hash", "arm",
        )
        assert code == 0
        assert "digest :" in out


class TestPoolAndProfileFlag:
    def test_widgetpool_command(self, capsys):
        code, out, _ = run_cli(
            capsys, "--instructions", "3000", "widgetpool", "--size", "4"
        )
        assert code == 0
        assert "pool size      : 4 widgets" in out
        assert "fingerprint" in out

    def test_pool_server_command(self, capsys):
        # A bounded sha256d pool run: starts, idles briefly, reports.
        code, out, _ = run_cli(
            capsys, "pool", "--pow", "sha256d", "--port", "0",
            "--duration", "0.2", "--refresh", "0.05",
        )
        assert code == 0
        assert "pool listening on 127.0.0.1:" in out
        assert "shares : accepted=0" in out
        assert "verify : 0 shares" in out

    def test_profile_flag_round_trip(self, capsys, tmp_path):
        # Export a profile, then hash against it.
        code, out, _ = run_cli(capsys, "profile", "matrix")
        assert code == 0
        path = tmp_path / "matrix.json"
        path.write_text(out)
        code, out, _ = run_cli(
            capsys, "--profile", str(path), "--instructions", "3000",
            "hash", "with-matrix-profile",
        )
        assert code == 0
        assert "digest :" in out

    def test_profile_flag_changes_digest(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "profile", "matrix")
        path = tmp_path / "m.json"
        path.write_text(out)
        _, default_out, _ = run_cli(capsys, "--instructions", "3000", "hash", "d")
        _, custom_out, _ = run_cli(
            capsys, "--profile", str(path), "--instructions", "3000", "hash", "d"
        )
        digest = lambda s: [l for l in s.splitlines() if l.startswith("digest")][0]
        assert digest(default_out) != digest(custom_out)


class TestChaosCommand:
    def test_chaos_run_outputs_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "chaos", "--nodes", "3", "--ticks", "140",
            "--seed", "3", "--drop", "0.05", "--byzantine", "9",
        )
        assert code == 0
        report = json.loads(out)
        assert report["converged"] is True
        assert report["violations"] == []
        assert report["blocks_mined"] > 0
        assert sum(report["forged"].values()) > 0

    def test_chaos_replay_identical(self, capsys):
        argv = ("chaos", "--nodes", "4", "--ticks", "160", "--seed", "7",
                "--drop", "0.1", "--partition", "20:45:0,1/2,3",
                "--byzantine", "8")
        _, first, _ = run_cli(capsys, *argv)
        _, second, _ = run_cli(capsys, *argv)
        assert first == second  # byte-identical replay from one seed

    def test_chaos_scenario_file_with_seed_override(self, capsys, tmp_path):
        from repro.blockchain.faults import Scenario

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(Scenario(n_nodes=3, ticks=120,
                                            convergence_ticks=60).to_dict()))
        code, out, _ = run_cli(
            capsys, "chaos", "--scenario", str(path), "--seed", "5"
        )
        assert code == 0
        assert json.loads(out)["scenario"]["seed"] == 5

    def test_chaos_crash_spec(self, capsys):
        code, out, _ = run_cli(
            capsys, "chaos", "--nodes", "3", "--ticks", "150",
            "--seed", "2", "--crash", "1:20:50",
        )
        assert code == 0
        assert json.loads(out)["nodes"][1]["crashes"] == 1

    def test_chaos_bad_partition_spec_errors(self, capsys):
        code, _, err = run_cli(
            capsys, "chaos", "--partition", "nonsense",
        )
        assert code == 2
        assert "partition" in err

    def test_chaos_invalid_schedule_errors(self, capsys):
        # No convergence window left: scenario validation rejects it.
        code, _, err = run_cli(
            capsys, "chaos", "--ticks", "40",
        )
        assert code == 2
        assert "convergence" in err
