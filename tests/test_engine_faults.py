"""Deterministic fault-injection tests for the supervised mining engine.

Every test pins the chunk size (``initial_chunk == min_chunk == max_chunk
== 4``) so chunk sequence number *s* always covers nonces ``[4s, 4s+4)``,
and mines a header whose first SHA-256d solution provably lands in chunk 2
(nonces 8..11).  That makes the fault schedule exact: a ``_FaultPlan``
keyed on chunk 1 fires before the solution chunk ever runs, a plan keyed
on chunk 2 stalls the solution chunk itself, and the supervision counters
the engine reports can be asserted with ``==``, not ``>=`` — including on
replay with a second fresh engine (the acceptance criterion).

The whole file is ``faults``-marked: ``tests/conftest.py`` arms a SIGALRM
watchdog around each test so a supervision bug shows up as a failure, not
a hung CI job.
"""

from __future__ import annotations

import functools

import pytest

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import BlockHeader
from repro.blockchain.mining_engine import MiningEngine, _FaultPlan
from repro.core.pow import (
    compact_to_target,
    difficulty_to_target,
    meets_target,
    target_to_compact,
)
from repro.errors import EngineFault, GenerationError, PowError

pytestmark = pytest.mark.faults

#: Fixed chunk geometry for every test in this file: chunk seq s covers
#: nonces [4s, 4s+4).
CHUNK = 4

EASY_BITS = target_to_compact(difficulty_to_target(200.0))
IMPOSSIBLE_BITS = target_to_compact(difficulty_to_target(2.0**40))


def _header(bits: int, tag: int = 0) -> BlockHeader:
    return BlockHeader(1, bytes(32), tag.to_bytes(32, "little"), 0, bits, 0)


def _first_solution(header: BlockHeader, limit: int) -> int | None:
    """First nonce in ``[0, limit)`` meeting the header's target (the
    sequential ground truth the engine must reproduce)."""
    pow_fn = Sha256d()
    target = compact_to_target(header.bits)
    for nonce in range(limit):
        digest = pow_fn.hash(header.with_nonce(nonce).serialize())
        if meets_target(digest, target):
            return nonce
    return None


@functools.cache
def _chunk2_header() -> tuple[BlockHeader, int]:
    """A header whose *first* SHA-256d solution lands in chunk 2 (nonces
    8..11): chunks 0 and 1 are then guaranteed solution-free, so faults
    injected on them must be survived before the answer is reachable."""
    bits = target_to_compact(difficulty_to_target(8.0))
    for tag in range(20_000):
        header = _header(bits, tag)
        nonce = _first_solution(header, 3 * CHUNK)
        if nonce is not None and nonce >= 2 * CHUNK:
            return header, nonce
    raise AssertionError("no test header with a chunk-2 first solution")


def _engine(factory=Sha256d, **overrides) -> MiningEngine:
    kwargs = dict(
        workers=2,
        initial_chunk=CHUNK,
        min_chunk=CHUNK,
        max_chunk=CHUNK,
        respawn_backoff=0.01,
    )
    kwargs.update(overrides)
    return MiningEngine(factory, **kwargs)


class _PoisonedSha256d(Sha256d):
    """SHA-256d whose widget generator 'fails' for exactly one nonce —
    the poisoned-seed stand-in (module level so workers can pickle it)."""

    POISON_NONCE = 5  # inside chunk 1 of the _chunk2_header search

    def hash(self, data: bytes) -> bytes:
        if BlockHeader.deserialize(data).nonce == self.POISON_NONCE:
            raise GenerationError("injected poisoned seed")
        return super().hash(data)


class TestWorkerCrashRecovery:
    def test_kill_recovers_and_finds_known_solution(self):
        header, expected = _chunk2_header()
        with _engine(_fault_plan=_FaultPlan(kill_chunk=1)) as engine:
            solved, digest, attempts = engine.mine_header(
                header, max_attempts=expected + 1
            )
            health = engine.health()
        # max_attempts == expected + 1, so the only admissible solution is
        # the sequential ground truth — despite the mid-search pool death.
        assert solved.nonce == expected
        assert Sha256d().hash(solved.serialize()) == digest
        assert attempts <= expected + 1
        assert health.respawns == 1
        assert health.chunk_timeouts == 0
        assert health.requeues >= 1  # the killed worker's in-flight chunks
        assert not health.healthy

    def test_repeated_kill_exhausts_respawns(self):
        plan = _FaultPlan(kill_chunk=0, one_shot=False)
        with _engine(workers=1, max_respawns=1, _fault_plan=plan) as engine:
            with pytest.raises(EngineFault) as excinfo:
                engine.mine_header(_header(EASY_BITS), max_attempts=64)
            health = engine.health()
        assert excinfo.value.code == "worker-crash"
        assert health.respawns == 1  # rebuilt once, then gave up


class TestHungChunkWatchdog:
    def test_stall_trips_watchdog_and_recovers(self):
        header, expected = _chunk2_header()
        plan = _FaultPlan(stall_chunk=2, stall_seconds=30.0)
        with _engine(chunk_timeout=1.0, _fault_plan=plan) as engine:
            solved, digest, _ = engine.mine_header(
                header, max_attempts=expected + 1
            )
            health = engine.health()
        assert solved.nonce == expected
        assert meets_target(digest, compact_to_target(header.bits))
        assert health.chunk_timeouts == 1
        assert health.respawns == 0
        assert health.requeues >= 1

    def test_stall_on_every_retry_exhausts_chunk_retries(self):
        plan = _FaultPlan(stall_chunk=0, stall_seconds=30.0, one_shot=False)
        with _engine(
            workers=1,
            chunk_timeout=0.4,
            max_chunk_retries=1,
            _fault_plan=plan,
        ) as engine:
            with pytest.raises(EngineFault) as excinfo:
                engine.mine_header(_header(EASY_BITS), max_attempts=64)
            health = engine.health()
        assert excinfo.value.code == "chunk-timeout"
        assert health.chunk_timeouts == 2  # initial attempt + one retry


class TestDeadline:
    def test_deadline_raises_structured_fault_and_engine_survives(self):
        engine = _engine(initial_chunk=CHUNK, max_chunk=1 << 20)
        try:
            with pytest.raises(EngineFault) as excinfo:
                engine.mine_header(
                    _header(IMPOSSIBLE_BITS),
                    max_attempts=1 << 40,
                    deadline=0.75,
                )
            assert excinfo.value.code == "deadline-exceeded"
            assert engine.health().deadline_exceeded == 1
            # The engine must remain usable after a deadline abort.
            solved, digest, _ = engine.mine_header(
                _header(EASY_BITS), max_attempts=100_000
            )
            assert meets_target(digest, compact_to_target(EASY_BITS))
        finally:
            engine.close()


class TestPoisonedSeeds:
    def test_poisoned_nonce_is_skipped_not_fatal(self):
        header, expected = _chunk2_header()
        with _engine(_PoisonedSha256d) as engine:
            solved, digest, attempts = engine.mine_header(
                header, max_attempts=expected + 1
            )
            health = engine.health()
        assert solved.nonce == expected
        assert Sha256d().hash(solved.serialize()) == digest
        assert health.poisoned_seeds == 1  # exactly nonce 5
        assert attempts <= expected + 1  # poisoned seeds count as attempts


class TestAcceptanceReplay:
    def test_kill_and_stall_still_find_known_nonce_exact_counts_on_replay(
        self,
    ):
        """ISSUE acceptance: one injected worker kill plus one injected
        chunk stall; the engine still returns the correct nonce and the
        health report records *exactly* the injected counts — twice, on
        fresh engines, to prove the schedule is deterministic."""
        header, expected = _chunk2_header()
        for _replay in range(2):
            plan = _FaultPlan(kill_chunk=1, stall_chunk=2, stall_seconds=30.0)
            with _engine(chunk_timeout=1.0, _fault_plan=plan) as engine:
                solved, digest, attempts = engine.mine_header(
                    header, max_attempts=expected + 1
                )
                health = engine.health()
                report = engine.report()
            assert solved.nonce == expected
            assert Sha256d().hash(solved.serialize()) == digest
            assert attempts <= expected + 1
            assert health.respawns == 1
            assert health.chunk_timeouts == 1
            assert health.deadline_exceeded == 0
            assert health.poisoned_seeds == 0
            assert not health.healthy
            # The same counters must surface through EngineReport.
            assert report.health.respawns == 1
            assert report.health.chunk_timeouts == 1


class TestCloseHygiene:
    def test_unexpected_close_error_is_recorded_not_swallowed(self):
        class _ExplodingEvent:
            def set(self):
                raise RuntimeError("cancel event corrupted")

            def clear(self):
                pass

        engine = _engine(workers=1)
        engine.mine_header(_header(EASY_BITS), max_attempts=100_000)
        engine._cancel = _ExplodingEvent()
        engine.close()  # must complete despite the exploding event
        errors = engine.health().close_errors
        assert len(errors) == 1
        assert errors[0].startswith("cancel:")
        assert "RuntimeError" in errors[0]

    def test_expected_shutdown_race_stays_silent(self):
        class _GoneEvent:
            def set(self):
                raise BrokenPipeError("manager already gone")

            def clear(self):
                pass

        engine = _engine(workers=1)
        engine.mine_header(_header(EASY_BITS), max_attempts=100_000)
        engine._cancel = _GoneEvent()
        engine.close()
        assert engine.health().close_errors == []


class TestHappyPathHealth:
    def test_clean_run_reports_healthy(self):
        with _engine() as engine:
            solved, digest, _ = engine.mine_header(
                _header(EASY_BITS), max_attempts=100_000
            )
            health = engine.health()
        assert meets_target(digest, compact_to_target(EASY_BITS))
        assert health.healthy
        assert health.respawns == 0
        assert health.chunk_timeouts == 0
        assert health.requeues == 0
        assert health.poisoned_seeds == 0
        assert health.degradations == {}
        assert health.close_errors == []
