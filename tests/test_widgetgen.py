"""Widget generator tests: determinism, Table I field isolation, structure."""

import pytest

from repro.core.seed import HashSeed, SeedField
from repro.errors import ConfigError, GenerationError
from repro.isa.opcodes import OpClass, Opcode
from repro.rng import Xoshiro256
from repro.widgetgen.generator import generate_spec
from repro.widgetgen.ir import BlockSpec, GuardSpec, LoopSpec, WidgetSpec
from repro.widgetgen.memstream import plan_memory
from repro.widgetgen.params import GeneratorParams

from tests.conftest import seed_of


class TestParams:
    def test_defaults_valid(self):
        GeneratorParams()

    def test_test_scale_smaller_than_default(self):
        assert GeneratorParams.test_scale().target_instructions < GeneratorParams().target_instructions

    def test_full_scale_is_paper_scale(self):
        assert GeneratorParams.full_scale().target_instructions >= 1_000_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(target_instructions=10),
            dict(noise_fraction=1.5),
            dict(snapshot_interval=0),
            dict(mean_blocks=1),
            dict(size_jitter=(0.0, 1.0)),
            dict(size_jitter=(2.0, 1.0)),
            dict(inner_trips=(0, 4)),
            dict(guard_fraction=-0.1),
            dict(fuse_factor=1.0),
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GeneratorParams(**kwargs)


class TestMemoryPlan:
    def test_plan_deterministic_in_rng(self, leela_profile):
        a = plan_memory(leela_profile, Xoshiro256(1), 0.3)
        b = plan_memory(leela_profile, Xoshiro256(1), 0.3)
        assert a == b

    def test_regions_power_of_two(self, leela_profile):
        plan = plan_memory(leela_profile, Xoshiro256(1), 0.3)
        for words in (plan.hot_words, plan.cold_words, plan.ring_words):
            assert words == 0 or (words & (words - 1)) == 0

    def test_probabilities_sane(self, leela_profile):
        plan = plan_memory(leela_profile, Xoshiro256(1), 0.3)
        assert 0 <= plan.p_cold <= 0.6
        assert 0 <= plan.p_ring <= 0.3
        assert plan.p_cold + plan.p_ring <= 0.85

    def test_footprint_scales_with_duration(self, leela_profile):
        small = plan_memory(leela_profile, Xoshiro256(1), 0.05)
        large = plan_memory(leela_profile, Xoshiro256(1), 4.0)
        assert large.footprint_bytes() >= small.footprint_bytes()

    def test_directives_cover_regions(self, leela_profile):
        plan = plan_memory(leela_profile, Xoshiro256(1), 0.3)
        kinds = [d.kind for d in plan.directives()]
        assert kinds.count("random") == 2
        if plan.ring_words:
            assert "ring" in kinds

    def test_bad_duration_rejected(self, leela_profile):
        with pytest.raises(GenerationError):
            plan_memory(leela_profile, Xoshiro256(1), 0.0)


class TestIrAccounting:
    def test_block_expected_cost_counts_tokens(self):
        block = BlockSpec(
            pre=[("prng",), ("bump", "hot", 3)],
            guard=None,
            body=[("ins", int(Opcode.ADD), 6, 7, 8, 0), ("load", "hot", 6, 0)],
        )
        assert block.expected_cost() == 6 + 2 + 2

    def test_guarded_block_weights_body_by_exec_p(self):
        guard = GuardSpec(exec_p=0.5, threshold="mid", invert=False)
        block = BlockSpec(guard=guard, body=[("ins", int(Opcode.ADD), 6, 7, 8, 0)] * 4)
        # Guard costs 2 instructions (mix xor + branch); body weighted by exec_p.
        assert block.expected_cost() == pytest.approx(2 + 0.5 * 4)

    def test_dload_counts_two_instructions(self):
        block = BlockSpec(body=[("dload", "hot", 6, 7)])
        assert block.expected_cost() == 2
        classes = block.expected_classes()
        assert classes[OpClass.INT_ALU] == 1
        assert classes[OpClass.LOAD] == 1

    def test_loop_spec_validation(self):
        with pytest.raises(GenerationError):
            LoopSpec(start=3, end=2, trips=4)
        with pytest.raises(GenerationError):
            LoopSpec(start=0, end=1, trips=0)

    def test_guard_spec_validation(self):
        with pytest.raises(GenerationError):
            GuardSpec(exec_p=0.0, threshold="hi", invert=False)
        with pytest.raises(GenerationError):
            GuardSpec(exec_p=1.0, threshold="hi", invert=False)
        with pytest.raises(GenerationError):
            GuardSpec(exec_p=0.5, threshold="weird", invert=False)

    def test_widget_spec_validates_loop_overlap(self, leela_profile):
        plan = plan_memory(leela_profile, Xoshiro256(1), 0.3)
        spec = WidgetSpec(
            name="bad",
            seed_hex="00" * 32,
            blocks=[BlockSpec() for _ in range(6)],
            loops=[LoopSpec(0, 2, 4), LoopSpec(2, 4, 4)],
            outer_trips=1,
            plan=plan,
            snapshot_interval=100,
        )
        with pytest.raises(GenerationError):
            spec.validate()


class TestGeneratorDeterminism:
    def test_same_seed_same_spec_fingerprint(self, generator):
        w1 = generator.widget(seed_of("det"))
        w2 = generator.widget(seed_of("det"))
        assert w1.fingerprint() == w2.fingerprint()

    def test_different_seeds_different_programs(self, generator):
        fingerprints = {generator.widget(seed_of(i)).fingerprint() for i in range(8)}
        assert len(fingerprints) == 8

    def test_spec_size_near_target(self, generator, test_params):
        lo, hi = test_params.size_jitter
        for tag in range(6):
            spec = generator.spec(seed_of(tag))
            expected = spec.expected_instructions()
            assert lo * 0.8 <= expected / test_params.target_instructions <= hi * 1.2


class TestTableOneFieldIsolation:
    """Each Table I field must affect its designated aspect (and, for the
    noise fields, *only* increase its class's target)."""

    def _mix(self, profile, seed, params):
        spec = generate_spec(profile, seed, params)
        return spec.meta["target_mix"], spec

    @pytest.mark.parametrize(
        "field,mix_key",
        [
            (SeedField.INT_ALU, "int_alu"),
            (SeedField.INT_MUL, "int_mul"),
            (SeedField.FP_ALU, "fp_alu"),
            (SeedField.LOADS, "load"),
            (SeedField.STORES, "store"),
        ],
    )
    def test_noise_field_raises_its_class(self, leela_profile, test_params, field, mix_key):
        base_seed = HashSeed.from_fields([0] * 8)
        high_seed = base_seed.with_field(field, 2**32 - 1)
        base_mix, _ = self._mix(leela_profile, base_seed, test_params)
        high_mix, _ = self._mix(leela_profile, high_seed, test_params)
        # The noised class's share rises; every other class's share falls
        # or stays (renormalisation) — the "positive noise only" property.
        assert high_mix[mix_key] >= base_mix[mix_key]
        for key in base_mix:
            if key != mix_key:
                assert high_mix[key] <= base_mix[key] + 1e-12

    def test_noise_reduces_branch_fraction(self, leela_profile, test_params):
        """§V-B: positive noise on compute classes -> proportionally fewer
        branches."""
        base_seed = HashSeed.from_fields([0] * 8)
        noisy = HashSeed.from_fields([2**32 - 1] * 5 + [0, 0, 0])
        base_mix, _ = self._mix(leela_profile, base_seed, test_params)
        noisy_mix, _ = self._mix(leela_profile, noisy, test_params)
        assert noisy_mix["branch"] < base_mix["branch"]

    def test_branch_field_changes_taken_target(self, leela_profile, test_params):
        base = HashSeed.from_fields([7] * 8)
        low = base.with_field(SeedField.BRANCH_BEHAVIOR, 0)
        high = base.with_field(SeedField.BRANCH_BEHAVIOR, 2**32 - 1)
        _, spec_low = self._mix(leela_profile, low, test_params)
        _, spec_high = self._mix(leela_profile, high, test_params)
        assert spec_low.meta["target_taken_rate"] != spec_high.meta["target_taken_rate"]
        assert spec_low.meta["mid_threshold"] != spec_high.meta["mid_threshold"]

    def test_bbv_field_changes_structure_not_memory_plan(self, leela_profile, test_params):
        base = HashSeed.from_fields([7] * 8)
        other = base.with_field(SeedField.BBV_SEED, 12345)
        spec_a = generate_spec(leela_profile, base, test_params)
        spec_b = generate_spec(leela_profile, other, test_params)
        assert spec_a.plan == spec_b.plan  # memory comes from field 7
        from repro.widgetgen.codegen import compile_spec

        assert compile_spec(spec_a).fingerprint() != compile_spec(spec_b).fingerprint()

    def test_memory_field_changes_plan_seed(self, leela_profile, test_params):
        base = HashSeed.from_fields([7] * 8)
        other = base.with_field(SeedField.MEMORY_SEED, 999)
        spec_a = generate_spec(leela_profile, base, test_params)
        spec_b = generate_spec(leela_profile, other, test_params)
        assert spec_a.plan.fill_seed != spec_b.plan.fill_seed

    def test_noise_fields_do_not_change_structure_rngs(self, leela_profile, test_params):
        """Changing only field 0 leaves block/loop structure identical."""
        base = HashSeed.from_fields([7] * 8)
        other = base.with_field(SeedField.INT_ALU, 2**31)
        spec_a = generate_spec(leela_profile, base, test_params)
        spec_b = generate_spec(leela_profile, other, test_params)
        assert len(spec_a.blocks) == len(spec_b.blocks)
        assert spec_a.loops == spec_b.loops


class TestSpecStructure:
    def test_structure_within_configured_bounds(self, generator, test_params):
        for tag in range(6):
            spec = generator.spec(seed_of(tag))
            assert 4 <= len(spec.blocks) <= test_params.mean_blocks + 2
            assert len(spec.loops) <= test_params.max_inner_loops
            for loop in spec.loops:
                assert test_params.inner_trips[0] <= loop.trips <= test_params.inner_trips[1]

    def test_first_block_unguarded(self, generator):
        for tag in range(6):
            spec = generator.spec(seed_of(tag))
            assert spec.blocks[0].guard is None

    def test_prng_advances_amortised_over_guards(self, generator):
        # One advance per ~3 guards: at least one advance exists, and no
        # more advances than guarded blocks.
        spec = generator.spec(seed_of("prng"))
        guarded = [b for b in spec.blocks if b.guard is not None]
        advances = [b for b in spec.blocks if ("prng",) in b.pre]
        assert advances
        assert len(advances) <= len(guarded)
        assert all(b.guard is not None for b in advances)

    def test_expected_mix_close_to_target(self, generator):
        """The generator's own accounting must match its target mix."""
        spec = generator.spec(seed_of("mix"))
        expected = spec.expected_class_mix()
        target = spec.meta["target_mix"]
        for cls in (OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE, OpClass.BRANCH):
            assert expected[cls] == pytest.approx(target[cls.name.lower()], abs=0.08)

    def test_fuse_exceeds_expected_instructions(self, generator):
        spec = generator.spec(seed_of("fuse"))
        assert spec.meta["fuse"] > 2 * spec.expected_instructions()


class TestSpecSerialization:
    def test_json_round_trip_preserves_program(self, generator):
        from repro.widgetgen.codegen import compile_spec
        from repro.widgetgen.ir import WidgetSpec

        spec = generator.spec(seed_of("json"))
        again = WidgetSpec.from_json(spec.to_json())
        assert compile_spec(again).fingerprint() == compile_spec(spec).fingerprint()

    def test_round_trip_preserves_metadata(self, generator):
        from repro.widgetgen.ir import WidgetSpec

        spec = generator.spec(seed_of("meta"))
        again = WidgetSpec.from_dict(spec.to_dict())
        assert again.outer_trips == spec.outer_trips
        assert again.meta["target_mix"] == spec.meta["target_mix"]
        assert again.plan == spec.plan

    def test_unknown_schema_rejected(self, generator):
        from repro.widgetgen.ir import WidgetSpec

        data = generator.spec(seed_of("schema")).to_dict()
        data["schema"] = 9
        with pytest.raises(GenerationError):
            WidgetSpec.from_dict(data)

    def test_from_dict_validates(self, generator):
        from repro.widgetgen.ir import WidgetSpec

        data = generator.spec(seed_of("bad")).to_dict()
        data["outer_trips"] = 0
        with pytest.raises(GenerationError):
            WidgetSpec.from_dict(data)
