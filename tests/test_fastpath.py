"""Differential and behavioural tests for the dual-path execution engine.

The fast path (:mod:`repro.machine.fastpath`) must be *bit-identical* to
the timing path on everything architectural — output bytes, register
files, memory, snapshots, halting, retired count, even the exception a
runaway program raises — because HashCore digests are computed from that
state and any divergence would fork consensus between fast miners and
timed profilers.  Both fast-path strategies (threaded code and the
stripped ladder) are checked against the timed interpreter and against
each other, over generated widgets, hypothesis-fuzzed programs, and
hand-built edge cases (HALT-vs-budget ordering, snapshot boundaries,
initial register files).
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings

from repro.core.hashcore import HashCore
from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.config import PRESETS, preset
from repro.machine.cpu import EXECUTION_MODES, Machine
from repro.machine.fastpath import run_fast
from repro.machine.memory import Memory
from repro.widgetgen.params import GeneratorParams

from tests.conftest import seed_of
from tests.test_differential import programs

# A small machine keeps per-run memory allocation cheap; memory size is a
# consensus parameter, but both paths always share one config here so the
# comparison is exact regardless of the size chosen.
_SMALL_WORDS = 1 << 16


def _small_machine(mode: str = "timed") -> Machine:
    return Machine(Machine().config.scaled_memory(_SMALL_WORDS), mode=mode)


def _run_widget(widget, machine, **kwargs):
    """Execute a widget the way Widget.execute does, returning (result, memory)."""
    memory = machine.new_memory()
    for directive in widget.spec.plan.directives():
        directive.apply(memory)
    result = machine.run(
        widget.program,
        memory,
        max_instructions=int(widget.spec.meta.get("fuse", 10_000_000)),
        snapshot_interval=widget.spec.snapshot_interval,
        **kwargs,
    )
    return result, memory


def _assert_same_architectural(ref, got, *, mem_ref=None, mem_got=None):
    assert got.output == ref.output
    assert got.iregs == ref.iregs
    assert got.fregs == ref.fregs
    assert got.halted == ref.halted
    assert got.snapshots == ref.snapshots
    assert got.counters.retired == ref.counters.retired
    if mem_ref is not None:
        assert mem_got.words == mem_ref.words


class TestWidgetDifferential:
    """Fast path vs timed path over generated widgets (the real workload)."""

    def test_fifty_fuzzed_seeds_bit_identical(self, generator):
        machine = _small_machine()
        for i in range(50):
            widget = generator.widget(seed_of(f"fastpath-{i}"))
            timed, mem_t = _run_widget(widget, machine, mode="timed")
            fast, mem_f = _run_widget(widget, machine, mode="fast")
            _assert_same_architectural(
                timed, fast, mem_ref=mem_t, mem_got=mem_f
            )

    def test_ladder_and_threaded_agree(self, generator):
        machine = _small_machine()
        for i in range(8):
            widget = generator.widget(seed_of(f"fastpath-strategy-{i}"))
            timed, _ = _run_widget(widget, machine, mode="timed")
            for threaded in (False, True):
                memory = machine.new_memory()
                for directive in widget.spec.plan.directives():
                    directive.apply(memory)
                fast = run_fast(
                    machine,
                    widget.program,
                    memory,
                    max_instructions=int(widget.spec.meta.get("fuse", 10_000_000)),
                    snapshot_interval=widget.spec.snapshot_interval,
                    threaded=threaded,
                )
                _assert_same_architectural(timed, fast)

    def test_all_presets_digest_parity(self, test_params):
        data = b"dual-path preset parity"
        for name in sorted(PRESETS):
            fast_core = HashCore(
                machine=preset(name), params=test_params, mode="fast"
            )
            timed_core = HashCore(
                machine=preset(name), params=test_params, mode="timed"
            )
            assert fast_core.hash(data) == timed_core.hash(data), name


class TestHypothesisDifferential:
    """Three-way agreement on hypothesis-fuzzed straight-line programs."""

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_fast_matches_timed(self, instructions):
        program = Program(instructions=instructions + [Instruction(int(Opcode.HALT))])
        program.validate()
        machine = _small_machine()

        mem_timed = Memory(_SMALL_WORDS)
        timed = machine.run(program, mem_timed, max_instructions=1000)
        for threaded in (False, True):
            mem_fast = Memory(_SMALL_WORDS)
            fast = run_fast(
                machine, program, mem_fast, max_instructions=1000,
                threaded=threaded,
            )
            _assert_same_architectural(
                timed, fast, mem_ref=mem_timed, mem_got=mem_fast
            )


def _loop_forever() -> Program:
    return Program(instructions=[
        Instruction(int(Opcode.MOVI), 0, 0, 0, 1),
        Instruction(int(Opcode.JMP), 0, 0, 0, 0),
    ])


class TestEdgeCaseParity:
    """Hand-built corners where the two paths could plausibly diverge."""

    def test_limit_exceeded_message_parity(self):
        machine = _small_machine()
        program = _loop_forever()
        messages = []
        for mode in EXECUTION_MODES:
            with pytest.raises(ExecutionLimitExceeded) as excinfo:
                machine.run(program, max_instructions=100, mode=mode)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_halt_does_not_consume_budget_on_either_path(self):
        # 5 NOPs + HALT: the HALT retires but must not count against the
        # budget, so max_instructions=6 succeeds and =5 raises — on both
        # paths, with identical retired counts.
        machine = _small_machine()
        program = Program(instructions=[
            *[Instruction(int(Opcode.NOP)) for _ in range(5)],
            Instruction(int(Opcode.HALT)),
        ])
        for mode in EXECUTION_MODES:
            result = machine.run(program, max_instructions=6, mode=mode)
            assert result.halted and result.counters.retired == 6, mode
            with pytest.raises(ExecutionLimitExceeded):
                machine.run(program, max_instructions=5, mode=mode)

    def test_snapshot_boundary_parity(self):
        # Final instruction landing exactly on a snapshot boundary must not
        # double-emit: interval snapshots plus the one final snapshot.
        machine = _small_machine()
        program = Program(instructions=[
            *[Instruction(int(Opcode.MOVI), i % 16, 0, 0, i) for i in range(10)],
            Instruction(int(Opcode.HALT)),
        ])
        timed = machine.run(program, snapshot_interval=5, mode="timed")
        fast = machine.run(program, snapshot_interval=5, mode="fast")
        _assert_same_architectural(timed, fast)
        assert fast.snapshots == timed.snapshots >= 2

    def test_initial_register_parity(self):
        machine = _small_machine()
        program = Program(instructions=[
            Instruction(int(Opcode.ADD), 0, 1, 2),
            Instruction(int(Opcode.FADD), 0, 1, 2),
            Instruction(int(Opcode.HALT)),
        ])
        iregs = [(1 << 64) + i for i in range(16)]  # over-wide: must mask
        fregs = [0.5 * i for i in range(16)]
        timed = machine.run(
            program, initial_iregs=iregs, initial_fregs=fregs, mode="timed"
        )
        fast = machine.run(
            program, initial_iregs=iregs, initial_fregs=fregs, mode="fast"
        )
        _assert_same_architectural(timed, fast)

    def test_bad_register_lengths_rejected(self):
        machine = _small_machine()
        program = Program(instructions=[Instruction(int(Opcode.HALT))])
        with pytest.raises(ExecutionError):
            run_fast(machine, program, initial_iregs=[0] * 3)
        with pytest.raises(ExecutionError):
            run_fast(machine, program, initial_fregs=[0.0] * 3)
        with pytest.raises(ExecutionError):
            run_fast(machine, program, max_instructions=0)


class TestModeKnob:
    """The mode plumbing through Machine / HashCore / traces."""

    def test_unknown_modes_rejected(self):
        with pytest.raises(ExecutionError):
            Machine(mode="warp")
        machine = _small_machine()
        program = Program(instructions=[Instruction(int(Opcode.HALT))])
        with pytest.raises(ExecutionError):
            machine.run(program, mode="warp")
        with pytest.raises(ValueError):
            HashCore(mode="warp")

    def test_fast_mode_skips_timing(self):
        machine = _small_machine("fast")
        program = Program(instructions=[
            Instruction(int(Opcode.MOVI), 0, 0, 0, 7),
            Instruction(int(Opcode.HALT)),
        ])
        result = machine.run(program)
        assert result.counters.retired == 2
        assert result.counters.cycles == 0  # no timing model ran

    def test_collect_detail_forces_timed_path(self):
        machine = _small_machine("fast")
        program = Program(instructions=[
            Instruction(int(Opcode.MOVI), 0, 0, 0, 7),
            Instruction(int(Opcode.HALT)),
        ])
        result = machine.run(program, collect_detail=True)
        assert result.counters.cycles > 0  # timing model ran despite mode

    def test_trace_defaults_to_timed_counters(self, test_params):
        core = HashCore(machine=_small_machine(), params=test_params)
        assert core.mode == "jit"
        trace = core.hash_with_trace(b"trace-default")
        assert trace.result.counters.cycles > 0
        fast_trace = core.hash_with_trace(b"trace-default", mode="fast")
        assert fast_trace.result.counters.cycles == 0
        assert fast_trace.digest == trace.digest
        assert trace.widgets and trace.results  # explicit, non-None lists

    def test_program_handler_cache(self):
        program = Program(instructions=[
            Instruction(int(Opcode.MOVI), 0, 0, 0, 3),
            Instruction(int(Opcode.HALT)),
        ])
        handlers = program.fast_handlers()
        assert program.fast_handlers() is handlers  # cached
        program.instructions.append(Instruction(int(Opcode.HALT)))
        program.invalidate_code()
        rebuilt = program.fast_handlers()
        assert rebuilt is not handlers and len(rebuilt) == 3


class TestFastPathSpeed:
    """Tier-1 smoke: the fast path must not be slower than the timed path.

    The headline >=3x speedup is measured at full widget scale by
    ``benchmarks/bench_hashrate.py`` (recorded in BENCH_hashrate.json);
    asserting the full ratio here would make the tier-1 suite flaky on
    loaded CI machines, so this only guards the sign of the win.
    """

    def test_fast_not_slower_than_timed(self, generator):
        machine = _small_machine()
        widget = generator.widget(seed_of("fastpath-speed"))

        def best_of(mode: str, repeats: int = 3) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                _run_widget(widget, machine, mode=mode)
                best = min(best, time.perf_counter() - start)
            return best

        _run_widget(widget, machine, mode="fast")  # warm handler cache
        assert best_of("fast") <= best_of("timed")
