"""Fuzzing the widget generator with arbitrary 256-bit seeds.

Every possible hash-gate output must yield a valid, terminating,
verifiable widget — the generator runs inside a consensus rule, so there
is no such thing as an unlucky seed.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.seed import HashSeed
from repro.machine.cpu import Machine
from repro.widgetgen.codegen import compile_spec
from repro.widgetgen.generator import generate_spec
from repro.widgetgen.params import GeneratorParams

_PARAMS = GeneratorParams(target_instructions=3000, snapshot_interval=250)
_MACHINE = Machine()

seeds = st.binary(min_size=32, max_size=32).map(HashSeed)


class TestGeneratorTotality:
    @settings(max_examples=80, deadline=None)
    @given(seed=seeds)
    def test_any_seed_yields_valid_spec(self, leela_profile, seed):
        spec = generate_spec(leela_profile, seed, _PARAMS)
        spec.validate()
        assert spec.outer_trips >= 1
        assert spec.expected_instructions() > 0

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds)
    def test_any_seed_compiles_and_halts(self, leela_profile, seed):
        spec = generate_spec(leela_profile, seed, _PARAMS)
        program = compile_spec(spec)
        program.validate()
        memory = _MACHINE.new_memory()
        for directive in spec.plan.directives():
            directive.apply(memory)
        result = _MACHINE.run(
            program,
            memory,
            max_instructions=int(spec.meta["fuse"]),
            snapshot_interval=spec.snapshot_interval,
        )
        assert result.halted
        assert result.output

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds)
    def test_generation_is_a_pure_function(self, leela_profile, seed):
        a = compile_spec(generate_spec(leela_profile, seed, _PARAMS))
        b = compile_spec(generate_spec(leela_profile, seed, _PARAMS))
        assert a.fingerprint() == b.fingerprint()

    @settings(max_examples=40, deadline=None)
    @given(seed=seeds)
    def test_dynamic_size_near_expectation(self, leela_profile, seed):
        spec = generate_spec(leela_profile, seed, _PARAMS)
        program = compile_spec(spec)
        memory = _MACHINE.new_memory()
        for directive in spec.plan.directives():
            directive.apply(memory)
        result = _MACHINE.run(
            program, memory, max_instructions=int(spec.meta["fuse"])
        )
        expected = spec.expected_instructions()
        # Guard realisations wobble the count; x2 bounds are conservative.
        assert 0.4 * expected < result.counters.retired < 2.5 * expected

    @settings(max_examples=40, deadline=None)
    @given(seed_a=seeds, seed_b=seeds)
    def test_distinct_seeds_rarely_collide(self, leela_profile, seed_a, seed_b):
        if seed_a.raw == seed_b.raw:
            return
        a = compile_spec(generate_spec(leela_profile, seed_a, _PARAMS))
        b = compile_spec(generate_spec(leela_profile, seed_b, _PARAMS))
        assert a.fingerprint() != b.fingerprint()


class TestGeneratorAcrossProfiles:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_extreme_profiles_still_generate(self, seed):
        """A degenerate profile (all integer, no branches beyond structure,
        no memory) must still produce runnable widgets."""
        from repro.profiling.profile import PerformanceProfile

        profile = PerformanceProfile(
            name="degenerate",
            machine="test",
            dynamic_instructions=10_000,
            instruction_mix={
                "int_alu": 0.9, "int_mul": 0.0, "fp_alu": 0.0, "load": 0.0,
                "store": 0.0, "branch": 0.1, "vector": 0.0, "system": 0.0,
            },
            branch_taken_rate=0.5,
            branch_accuracy=0.9,
            biased_branch_fraction=0.5,
            dep_distance_hist=[1.0, 0, 0, 0, 0, 0, 0, 0],
            stride_hist=[1.0, 0, 0, 0, 0, 0, 0],
            block_size_mean=5.0,
            working_set_bytes=1024,
            l1_hit_rate=1.0,
            ipc=1.0,
        )
        spec = generate_spec(profile, seed, _PARAMS)
        program = compile_spec(spec)
        memory = _MACHINE.new_memory()
        for directive in spec.plan.directives():
            directive.apply(memory)
        result = _MACHINE.run(
            program, memory, max_instructions=int(spec.meta["fuse"])
        )
        assert result.halted
