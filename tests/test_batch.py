"""Differential and behavioural tests for the tier-3 batch lockstep engine.

The batch engine (:mod:`repro.machine.batch`) advances N independent
widget executions per dispatch step — registers and memory are
``(N,)``-shaped numpy arrays, divergent control flow is handled with
per-lane active masks and min-pc-first scheduling.  Like every other
tier it must stay *bit-identical* to the timed interpreter on everything
architectural: output bytes, register files, memory words, snapshots,
halting, retired counts, and the exception a runaway lane raises.  Any
divergence would fork consensus between batch miners and everyone else,
so the checks cover: generated widgets across every machine preset,
hypothesis-fuzzed straight-line *and* branchy programs, hand-built
divergence-heavy multi-lane ensembles, per-lane fuse trips, and the
ladder's batch→jit degradation when batch translation is poisoned.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hashcore import HashCore
from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.batch import compile_batch, run_batch
from repro.machine.config import PRESETS, preset
from repro.machine.cpu import Machine
from repro.machine.memory import Memory

from tests.conftest import seed_of
from tests.test_differential import programs, _instr
from tests.test_fastpath import (
    _assert_same_architectural,
    _loop_forever,
    _run_widget,
    _small_machine,
    _SMALL_WORDS,
)
from repro.widgetgen.generator import WidgetGenerator

pytestmark = pytest.mark.batch

np = pytest.importorskip("numpy")


def _boom(*_args, **_kwargs):
    raise RuntimeError("injected batch tier fault")


def _widget_memories(widget, machine, lanes, perturb=True):
    """Per-lane memories from the widget's plan, optionally perturbed so
    every lane is a distinct execution."""
    memories = []
    for lane in range(lanes):
        memory = machine.new_memory()
        for directive in widget.spec.plan.directives():
            directive.apply(memory)
        if perturb and lane:
            memory.write(0, (memory.read(0) + lane) & ((1 << 64) - 1))
        memories.append(memory)
    return memories


def _run_widget_batch(widget, machine, memories):
    return run_batch(
        machine,
        widget.program,
        memories,
        max_instructions=int(widget.spec.meta.get("fuse", 10_000_000)),
        snapshot_interval=widget.spec.snapshot_interval,
    )


class TestWidgetDifferential:
    """Batch vs timed over generated widgets, across every preset."""

    def test_fifty_fuzzed_seeds_bit_identical(self, generator):
        machine = _small_machine()
        for i in range(50):
            widget = generator.widget(seed_of(f"batch-{i}"))
            timed, mem_t = _run_widget(widget, machine, mode="timed")
            batch, mem_b = _run_widget(widget, machine, mode="batch")
            _assert_same_architectural(
                timed, batch, mem_ref=mem_t, mem_got=mem_b
            )

    def test_fuzzed_seeds_on_every_preset(self, leela_profile, test_params):
        generator = WidgetGenerator(leela_profile, test_params)
        for name in sorted(PRESETS):
            machine = Machine(preset(name).scaled_memory(_SMALL_WORDS))
            for i in range(4):
                widget = generator.widget(seed_of(f"batch-{name}-{i}"))
                timed, mem_t = _run_widget(widget, machine, mode="timed")
                batch, mem_b = _run_widget(widget, machine, mode="batch")
                _assert_same_architectural(
                    timed, batch, mem_ref=mem_t, mem_got=mem_b
                )

    def test_all_presets_digest_parity(self, test_params):
        data = b"batch preset parity"
        for name in sorted(PRESETS):
            batch_core = HashCore(
                machine=preset(name), params=test_params, mode="batch"
            )
            timed_core = HashCore(
                machine=preset(name), params=test_params, mode="timed"
            )
            assert batch_core.hash(data) == timed_core.hash(data), name


class TestMultiLane:
    """N > 1 lanes must equal N independent scalar runs, lane by lane."""

    def test_one_lane_equals_scalar(self, generator):
        widget = generator.widget(seed_of("batch-n1"))
        machine = _small_machine()
        timed, mem_t = _run_widget(widget, machine, mode="timed")
        memory = _widget_memories(widget, machine, 1)[0]
        (batch,) = _run_widget_batch(widget, machine, [memory])
        _assert_same_architectural(
            timed, batch, mem_ref=mem_t, mem_got=memory
        )

    def test_perturbed_lanes_match_scalar(self, generator):
        widget = generator.widget(seed_of("batch-multilane"))
        machine = _small_machine()
        lanes = 8
        batch_mems = _widget_memories(widget, machine, lanes)
        results = _run_widget_batch(widget, machine, batch_mems)
        scalar_mems = _widget_memories(widget, machine, lanes)
        for lane in range(lanes):
            scalar = machine.run(
                widget.program,
                scalar_mems[lane],
                max_instructions=int(
                    widget.spec.meta.get("fuse", 10_000_000)
                ),
                snapshot_interval=widget.spec.snapshot_interval,
                mode="fast",
            )
            _assert_same_architectural(
                scalar,
                results[lane],
                mem_ref=scalar_mems[lane],
                mem_got=batch_mems[lane],
            )

    def test_ndarray_memories_run_in_place(self, generator):
        """The (N, W) ndarray path is zero-copy: rows are mutated in
        place and match the Memory-list path bit for bit."""
        widget = generator.widget(seed_of("batch-ndarray"))
        machine = _small_machine()
        lanes = 4
        list_mems = _widget_memories(widget, machine, lanes)
        mem2d = np.stack(
            [np.array(m.np_words(), dtype=np.uint64) for m in list_mems]
        )
        from_list = _run_widget_batch(widget, machine, list_mems)
        from_array = _run_widget_batch(widget, machine, mem2d)
        for lane in range(lanes):
            _assert_same_architectural(from_list[lane], from_array[lane])
            assert bytes(list_mems[lane].words) == mem2d[lane].tobytes()

    def test_divergence_heavy_program(self):
        """Lanes taking opposite sides of every branch still match their
        scalar runs — the min-pc scheduler must mask and reconverge."""
        program = Program(instructions=[
            Instruction(int(Opcode.LOAD), 0, 15, 0, 0),    # r0 = mem[0]
            Instruction(int(Opcode.ANDI), 1, 0, 0, 1),     # r1 = r0 & 1
            Instruction(int(Opcode.BNE), 0, 1, 15, 6),     # odd lanes jump
            Instruction(int(Opcode.MOVI), 2, 0, 0, 111),
            Instruction(int(Opcode.ADDI), 2, 2, 0, 1000),
            Instruction(int(Opcode.JMP), 0, 0, 0, 8),
            Instruction(int(Opcode.MOVI), 2, 0, 0, 222),
            Instruction(int(Opcode.MUL), 2, 2, 0),         # r2 *= r0
            Instruction(int(Opcode.STORE), 2, 15, 0, 1),   # mem[1] = r2
            Instruction(int(Opcode.ANDI), 3, 0, 0, 7),
            Instruction(int(Opcode.ADDI), 3, 3, 0, 1),
            Instruction(int(Opcode.ADDI), 4, 4, 0, 3),     # loop body
            Instruction(int(Opcode.LOOPNZ), 3, 0, 0, 11),  # lane-varying trip
            Instruction(int(Opcode.HALT)),
        ])
        program.validate()
        machine = _small_machine()
        lanes = 16
        batch_mems = []
        scalar_mems = []
        for lane in range(lanes):
            for bucket in (batch_mems, scalar_mems):
                memory = Memory(_SMALL_WORDS)
                memory.write(0, lane)
                bucket.append(memory)
        results = run_batch(
            machine, program, batch_mems,
            max_instructions=1000, snapshot_interval=3,
        )
        for lane in range(lanes):
            scalar = machine.run(
                program, scalar_mems[lane],
                max_instructions=1000, snapshot_interval=3, mode="timed",
            )
            _assert_same_architectural(
                scalar, results[lane],
                mem_ref=scalar_mems[lane], mem_got=batch_mems[lane],
            )


#: Straight-line bodies with a handful of branches spliced in — targets
#: are always valid pcs, but loops (backward branches) are allowed and
#: bounded by the budget, so fuse-trip parity is exercised too.
@st.composite
def branchy_programs(draw):
    body = draw(st.lists(_instr(), min_size=4, max_size=40))
    n = len(body) + 1  # +HALT
    for _ in range(draw(st.integers(1, 4))):
        pos = draw(st.integers(0, len(body) - 1))
        op = draw(st.sampled_from(
            [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
             Opcode.JMP, Opcode.LOOPNZ]
        ))
        target = draw(st.integers(0, n - 1))
        if op is Opcode.JMP:
            body[pos] = Instruction(int(op), 0, 0, 0, target)
        elif op is Opcode.LOOPNZ:
            body[pos] = Instruction(
                int(op), draw(st.integers(0, 15)), 0, 0, target
            )
        else:
            body[pos] = Instruction(
                int(op), 0, draw(st.integers(0, 15)),
                draw(st.integers(0, 15)), target,
            )
    return body


class TestHypothesisDifferential:
    """Batch vs timed on hypothesis-fuzzed programs (one lane: the batch
    engine must be a bit-exact scalar interpreter before it is a SIMT
    one)."""

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_batch_matches_timed_straight_line(self, instructions):
        program = Program(
            instructions=instructions + [Instruction(int(Opcode.HALT))]
        )
        program.validate()
        machine = _small_machine()
        mem_timed = Memory(_SMALL_WORDS)
        timed = machine.run(program, mem_timed, max_instructions=1000)
        mem_batch = Memory(_SMALL_WORDS)
        (batch,) = run_batch(
            machine, program, [mem_batch], max_instructions=1000
        )
        _assert_same_architectural(
            timed, batch, mem_ref=mem_timed, mem_got=mem_batch
        )

    @settings(max_examples=60, deadline=None)
    @given(branchy_programs())
    def test_batch_matches_timed_branchy(self, instructions):
        program = Program(
            instructions=instructions + [Instruction(int(Opcode.HALT))]
        )
        program.validate()
        machine = _small_machine()
        mem_timed = Memory(_SMALL_WORDS)
        mem_batch = Memory(_SMALL_WORDS)
        try:
            timed = machine.run(
                program, mem_timed, max_instructions=300,
                snapshot_interval=7,
            )
        except ExecutionLimitExceeded:
            with pytest.raises(ExecutionLimitExceeded):
                run_batch(
                    machine, program, [mem_batch],
                    max_instructions=300, snapshot_interval=7,
                )
            return
        (batch,) = run_batch(
            machine, program, [mem_batch],
            max_instructions=300, snapshot_interval=7,
        )
        _assert_same_architectural(
            timed, batch, mem_ref=mem_timed, mem_got=mem_batch
        )


def _variable_trip_program() -> Program:
    """``mem[0]`` iterations of a two-instruction loop, then HALT —
    lane-controlled runtimes for the per-lane fuse tests."""
    return Program(instructions=[
        Instruction(int(Opcode.LOAD), 0, 15, 0, 0),
        Instruction(int(Opcode.ADDI), 1, 1, 0, 1),
        Instruction(int(Opcode.LOOPNZ), 0, 0, 0, 1),
        Instruction(int(Opcode.HALT)),
    ])


class TestPerLaneLimits:
    """A fuse trip is per-lane: one runaway lane must not take down —
    or slow down the accounting of — its neighbours."""

    def test_collect_errors_isolates_runaway_lanes(self):
        machine = _small_machine()
        program = _variable_trip_program()
        trips = [1, 500, 2, 500, 3]  # budget 100: lanes 1 and 3 blow up
        memories = []
        for trip in trips:
            memory = Memory(_SMALL_WORDS)
            memory.write(0, trip)
            memories.append(memory)
        results = run_batch(
            machine, program, memories,
            max_instructions=100, collect_errors=True,
        )
        for lane, trip in enumerate(trips):
            if trip > 100:
                assert isinstance(results[lane], ExecutionLimitExceeded)
            else:
                assert results[lane].halted
                assert int(results[lane].iregs[1]) == trip

    def test_error_message_matches_scalar(self):
        machine = _small_machine()
        program = _loop_forever()
        with pytest.raises(ExecutionLimitExceeded) as scalar:
            machine.run(program, max_instructions=50, mode="fast")
        memory = Memory(_SMALL_WORDS)
        with pytest.raises(ExecutionLimitExceeded) as batch:
            run_batch(machine, program, [memory], max_instructions=50)
        assert str(batch.value) == str(scalar.value)

    def test_default_mode_raises_first_error(self):
        machine = _small_machine()
        program = _variable_trip_program()
        memories = []
        for trip in (1, 500):
            memory = Memory(_SMALL_WORDS)
            memory.write(0, trip)
            memories.append(memory)
        with pytest.raises(ExecutionLimitExceeded):
            run_batch(machine, program, memories, max_instructions=100)


class TestTierFallback:
    """Poisoned batch translation must degrade to the scalar JIT with the
    ladder's bookkeeping intact — never crash, never change a digest."""

    def test_batch_compile_failure_falls_back_to_jit(
        self, generator, monkeypatch
    ):
        clean = generator.widget(seed_of("batch-fallback"))
        expected = clean.execute(Machine(), mode="jit")

        widget = generator.widget(seed_of("batch-fallback"))
        machine = Machine()
        monkeypatch.setattr(Program, "batch_code", _boom)
        result = widget.execute(machine, mode="batch")

        assert result.output == expected.output
        stats = machine.tier_stats()
        assert stats["degradations"] == {"batch->jit": 1}
        assert stats["runs"]["jit"] == 1
        assert stats["runs"]["batch"] == 0
        assert widget.program.tier_blocked("batch")
        assert "batch" in widget.program.cache_stats()["blocked_tiers"]

    def test_blocked_batch_tier_is_skipped_silently(
        self, generator, monkeypatch
    ):
        widget = generator.widget(seed_of("batch-fallback-rerun"))
        machine = Machine()
        monkeypatch.setattr(Program, "batch_code", _boom)
        first = widget.execute(machine, mode="batch")
        second = widget.execute(machine, mode="batch")
        assert first.output == second.output
        assert machine.tier_stats()["degradations"] == {"batch->jit": 1}
        assert machine.tier_stats()["runs"]["jit"] == 2

    def test_hash_batch_survives_batch_poisoning(
        self, test_params, monkeypatch
    ):
        datas = [b"batch-poison-%d" % i for i in range(3)]
        clean = HashCore(params=test_params, mode="batch")
        expected = clean.hash_batch(datas)

        core = HashCore(params=test_params, mode="batch")
        monkeypatch.setattr(Program, "batch_code", _boom)
        assert core.hash_batch(datas) == expected


class TestBatchApi:
    """Input validation and the compile_batch artifact."""

    def test_batch_code_cached_and_invalidated(self):
        program = Program(instructions=[
            Instruction(int(Opcode.MOVI), 0, 0, 0, 7),
            Instruction(int(Opcode.HALT)),
        ])
        code = compile_batch(program)
        assert code.length == 2
        assert program.batch_code().length == 2
        assert program.batch_code() is program.batch_code()
        program.invalidate_code()
        assert program.cache_stats()["batch_ready"] is False

    def test_rejects_bad_ndarray(self):
        machine = _small_machine()
        program = Program(instructions=[Instruction(int(Opcode.HALT))])
        with pytest.raises(ExecutionError):
            run_batch(
                machine, program,
                np.zeros((2, 100), dtype=np.uint64),  # not a power of two
            )
        with pytest.raises(ExecutionError):
            run_batch(
                machine, program,
                np.zeros((2, 64), dtype=np.int64),  # wrong dtype
            )

    def test_hash_batch_lockstep_groups_shared_programs(self, test_params):
        """Inputs selecting byte-identical programs form one lockstep
        group; everything else stays scalar.  (Distinct mining nonces
        essentially never share a program — the dedup below repeats
        *inputs*, which must NOT be double-executed either.)"""
        core = HashCore(params=test_params, mode="batch")
        datas = [b"lockstep-a", b"lockstep-b", b"lockstep-a"]
        digests = core.hash_batch(datas)
        assert digests[0] == digests[2]
        stats = core.cache_stats()["hash_batch"]
        assert stats["inputs"] == 3
        assert stats["unique"] == 2  # the repeat was deduplicated
