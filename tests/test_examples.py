"""Smoke tests for the example applications.

Examples are documentation that executes; these tests keep them from
rotting.  Each example's ``main()`` runs at reduced scale where the script
supports it.
"""

import importlib.util
import pathlib
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, _EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "H(x)" in out
        assert "verification        : OK" in out

    def test_network_forks(self, capsys):
        module = load_example("network_forks")
        module.main()
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "reorgs=1" in out

    def test_inverted_benchmarking_small(self, capsys):
        module = load_example("inverted_benchmarking")
        module.main(4)
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Figure 3" in out
        assert "<- Leela" in out

    def test_mining_simulation_parts(self, capsys):
        module = load_example("mining_simulation")
        module.real_mining()
        module.network_study()
        out = capsys.readouterr().out
        assert "chain height 3" in out
        assert "revenue shares" in out

    @pytest.mark.slow
    def test_asic_advantage(self, capsys):
        module = load_example("asic_advantage")
        module.main()
        out = capsys.readouterr().out
        assert "sha256d" in out
        assert "hashcore" in out

    def test_cryptocurrency(self, capsys):
        module = load_example("cryptocurrency")
        module.main()
        out = capsys.readouterr().out
        assert "block accepted at height 1" in out
        assert "replay rejected" in out

    def test_chaos_scenario(self, capsys):
        module = load_example("chaos_scenario")
        module.main()
        out = capsys.readouterr().out
        assert "round-trip OK" in out
        assert "violations=[] converged=True" in out
        assert "byte-identical report on replay: True" in out
