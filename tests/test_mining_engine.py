"""Tests for the persistent-worker mining engine (SHA-256d PoW for speed)."""

from __future__ import annotations

import pytest

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import BlockHeader
from repro.blockchain.mining_engine import (
    EngineReport,
    MiningEngine,
    WorkerStats,
    mine_header_engine,
)
from repro.core.pow import (
    compact_to_target,
    difficulty_to_target,
    meets_target,
    target_to_compact,
)
from repro.errors import PowError

EASY_BITS = target_to_compact(difficulty_to_target(200.0))
IMPOSSIBLE_BITS = target_to_compact(difficulty_to_target(2.0**40))


def _header(bits: int, tag: int = 0) -> BlockHeader:
    return BlockHeader(1, bytes(32), tag.to_bytes(32, "little"), 0, bits, 0)


class TestMiningEngine:
    def test_finds_solution(self):
        header = _header(EASY_BITS)
        with MiningEngine(Sha256d, workers=2) as engine:
            solved, digest, attempts = engine.mine_header(
                header, max_attempts=100_000
            )
        assert meets_target(digest, compact_to_target(EASY_BITS))
        assert Sha256d().hash(solved.serialize()) == digest
        assert attempts >= 1

    def test_persists_across_headers(self):
        # Two headers on one engine: the pool must be reused, both must
        # solve, and the report must aggregate both searches.
        with MiningEngine(Sha256d, workers=2) as engine:
            for tag in range(2):
                solved, digest, _ = engine.mine_header(
                    _header(EASY_BITS, tag), max_attempts=100_000
                )
                assert meets_target(digest, compact_to_target(EASY_BITS))
            report = engine.report()
        assert report.workers == 2
        assert report.batches >= 2
        assert report.hashes >= 2
        assert report.wall_seconds > 0
        assert report.hashrate > 0

    def test_exhaustion_raises(self):
        with MiningEngine(Sha256d, workers=2, initial_chunk=16,
                          min_chunk=8) as engine:
            with pytest.raises(PowError):
                engine.mine_header(
                    _header(IMPOSSIBLE_BITS), max_attempts=64
                )

    def test_attempts_never_exceed_max_attempts(self):
        # Budget smaller than the initial chunk: the submitted range must
        # be trimmed and the attempt count must reflect hashes computed.
        with MiningEngine(Sha256d, workers=2, initial_chunk=1000,
                          min_chunk=1) as engine:
            solved, digest, attempts = engine.mine_header(
                _header(target_to_compact(difficulty_to_target(2.0))),
                max_attempts=50,
            )
        assert 1 <= attempts <= 50
        assert solved.nonce < 50

    def test_start_nonce_respected(self):
        with MiningEngine(Sha256d, workers=2) as engine:
            solved, _, _ = engine.mine_header(
                _header(EASY_BITS), max_attempts=100_000, start_nonce=500
            )
        assert solved.nonce >= 500

    def test_per_worker_stats_channel(self):
        with MiningEngine(Sha256d, workers=2, initial_chunk=8,
                          min_chunk=1) as engine:
            with pytest.raises(PowError):
                engine.mine_header(_header(IMPOSSIBLE_BITS), max_attempts=64)
            report = engine.report()
        assert report.per_worker  # at least one worker reported
        for pid, stats in report.per_worker.items():
            assert stats.pid == pid
            assert stats.batches >= 1
            assert stats.hashes >= 1
            assert stats.busy_seconds > 0
            assert stats.hashrate > 0
        assert sum(s.hashes for s in report.per_worker.values()) == (
            report.hashes
        )

    def test_adaptive_chunk_grows_for_cheap_pow(self):
        # SHA-256d mines hundreds of thousands of nonces per second, so
        # after a few batches the adaptive chunk must leave its initial
        # value far behind.
        with MiningEngine(Sha256d, workers=2, initial_chunk=32,
                          target_batch_seconds=0.2) as engine:
            with pytest.raises(PowError):
                engine.mine_header(_header(IMPOSSIBLE_BITS),
                                   max_attempts=20_000)
            report = engine.report()
        assert report.chunk > 32

    def test_bad_params_rejected(self):
        with pytest.raises(PowError):
            MiningEngine(Sha256d, workers=0)
        with pytest.raises(PowError):
            MiningEngine(Sha256d, target_batch_seconds=0.0)
        with pytest.raises(PowError):
            MiningEngine(Sha256d, min_chunk=64, initial_chunk=8)
        with pytest.raises(PowError):
            MiningEngine(Sha256d).mine_header(
                _header(EASY_BITS), max_attempts=0
            )

    def test_close_is_idempotent_and_reusable(self):
        engine = MiningEngine(Sha256d, workers=1)
        solved, _, _ = engine.mine_header(
            _header(EASY_BITS), max_attempts=100_000
        )
        engine.close()
        engine.close()  # second close must be a no-op
        # Mining again rebuilds the pool lazily.
        solved2, _, _ = engine.mine_header(
            _header(EASY_BITS, tag=1), max_attempts=100_000
        )
        engine.close()
        assert solved.nonce >= 0 and solved2.nonce >= 0


class TestZeroElapsedReports:
    """Regression: reports generated before any chunk completes must give
    a 0.0 hashrate, never raise or return inf."""

    def test_report_before_any_mining(self):
        engine = MiningEngine(Sha256d, workers=1)
        try:
            report = engine.report()
        finally:
            engine.close()
        assert report.hashes == 0
        assert report.wall_seconds == 0.0
        assert report.hashrate == 0.0
        assert report.health.healthy

    def test_worker_stats_zero_busy_time(self):
        stats = WorkerStats(pid=1)
        assert stats.hashrate == 0.0
        # A batch whose measured elapsed time rounded to zero must not
        # divide by zero either.
        stats.hashes = 5
        assert stats.busy_seconds == 0.0
        assert stats.hashrate == 0.0

    def test_engine_report_zero_wall_time(self):
        report = EngineReport(
            workers=1, batches=1, hashes=10,
            wall_seconds=0.0, busy_seconds=0.0, chunk=8,
        )
        assert report.hashrate == 0.0


class TestConvenienceWrapper:
    def test_mine_header_engine(self):
        solved, digest, attempts = mine_header_engine(
            _header(EASY_BITS), Sha256d, workers=2, max_attempts=100_000
        )
        assert meets_target(digest, compact_to_target(EASY_BITS))
        assert 1 <= attempts <= 100_000
