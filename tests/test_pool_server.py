"""Pool server tests: protocol, grading, vardiff, payouts, end-to-end.

Four layers, cheapest first:

* pure units — wire framing, vardiff retargeting (plus a hypothesis fuzz
  of bursty arrival), PPLNS window arithmetic, the batch verifier;
* server integration over real sockets with an honest/blind client;
* a byte-identical **golden session transcript** pinning the protocol's
  deterministic serialization (``tests/data/pool_golden_session.jsonl``);
* a ``soak``-marked 200-client churn run, skipped unless ``--soak``.

SHA-256d keeps verification cheap; share difficulty 1.0 means every
digest qualifies, so blind clients exercise the full accept path.
"""

from __future__ import annotations

import asyncio
import itertools
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import BlockHeader
from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import RetargetSchedule
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.errors import PoolError
from repro.pool import protocol
from repro.pool.client import PoolClient
from repro.pool.jobs import ChainTemplateSource, StaticTemplateSource
from repro.pool.payout import PPLNSWindow
from repro.pool.server import PoolConfig, PoolServer, _Connection
from repro.pool.vardiff import Vardiff, VardiffConfig
from repro.pool.verifier import BatchVerifier

pytestmark = pytest.mark.pool

GOLDEN_PATH = Path(__file__).parent / "data" / "pool_golden_session.jsonl"

#: A block target no SHA-256d share will meet by accident (2^-40 each).
HARD_BITS = target_to_compact(difficulty_to_target(2.0**40))


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def static_header() -> BlockHeader:
    return BlockHeader(1, b"\x00" * 32, b"\x22" * 32, 1234, HARD_BITS, 0)


def make_server(**overrides) -> PoolServer:
    """A deterministic static-template server (vardiff off, fake clock)."""
    defaults: dict = dict(vardiff=False, nonce_bits=16)
    defaults.update(overrides)
    ticks = itertools.count()
    return PoolServer(
        Sha256d(),
        StaticTemplateSource(static_header()),
        PoolConfig(**defaults),
        clock=lambda: float(next(ticks)),
    )


class RawClient:
    """Hand-rolled connection for protocol-violation tests."""

    async def open(self, port: int) -> "RawClient":
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        return self

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def read(self) -> dict:
        line = await self.reader.readline()
        assert line, "connection closed while a message was expected"
        return protocol.decode_line(line)

    async def request(self, request_id, method, params) -> dict:
        await self.send_raw(
            protocol.encode(protocol.request(request_id, method, params))
        )
        return await self.read()

    async def at_eof(self) -> bool:
        return await self.reader.readline() == b""

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ======================================================================
# wire protocol units
# ======================================================================
class TestProtocol:
    def test_encode_is_deterministic_and_compact(self):
        line = protocol.encode({"b": 1, "a": {"z": None, "y": [1, 2]}})
        assert line == b'{"a":{"y":[1,2],"z":null},"b":1}\n'

    def test_decode_rejects_bad_json(self):
        with pytest.raises(protocol.PoolProtocolError) as exc:
            protocol.decode_line(b"{oops\n")
        assert exc.value.code == "parse-error"

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.PoolProtocolError) as exc:
            protocol.decode_line(b"[1,2,3]\n")
        assert exc.value.code == "parse-error"

    def test_decode_rejects_oversize_line(self):
        line = b'{"pad":"' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(protocol.PoolProtocolError) as exc:
            protocol.decode_line(line)
        assert exc.value.code == "parse-error"

    @pytest.mark.parametrize("frame", [
        {"method": "m", "params": {}},              # missing id
        {"id": True, "method": "m", "params": {}},  # bool id
        {"id": "7", "method": "m", "params": {}},   # string id
        {"id": 1, "params": {}},                    # missing method
        {"id": 1, "method": "", "params": {}},      # empty method
        {"id": 1, "method": "m", "params": [1]},    # non-object params
    ])
    def test_parse_request_rejects_bad_frames(self, frame):
        with pytest.raises(protocol.PoolProtocolError) as exc:
            protocol.parse_request(frame)
        assert exc.value.code == "bad-request"

    def test_unknown_error_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            protocol.PoolProtocolError("no-such-code", "x")
        with pytest.raises(ValueError):
            protocol.error_response(1, "no-such-code", "x")


# ======================================================================
# vardiff
# ======================================================================
class TestVardiff:
    def test_fast_shares_raise_difficulty_by_max_step(self):
        config = VardiffConfig(target_interval=2.0, retarget_shares=4)
        vd = Vardiff(config, 8.0)
        updated = [vd.record_share(i * 0.1) for i in range(4)]
        # 0.1s EMA against a 2s target wants 20x: clamped to max_step.
        assert updated[:3] == [None, None, None]
        assert updated[3] == 8.0 * config.max_step

    def test_slow_shares_lower_difficulty(self):
        config = VardiffConfig(target_interval=2.0, retarget_shares=4)
        vd = Vardiff(config, 64.0)
        # 5s intervals against a 2s target: rescale by 2/5 at share 4.
        result = [vd.record_share(i * 5.0) for i in range(4)][-1]
        assert result == 64.0 * (2.0 / 5.0)

    def test_on_target_client_is_never_churned(self):
        config = VardiffConfig(target_interval=2.0, retarget_shares=4)
        vd = Vardiff(config, 16.0)
        for i in range(32):
            assert vd.record_share(i * 2.0) is None
        assert vd.difficulty == 16.0
        assert vd.retargets == 0

    def test_difficulty_clamped_to_floor(self):
        config = VardiffConfig(target_interval=2.0, retarget_shares=2,
                               min_difficulty=1.0)
        vd = Vardiff(config, 1.0)
        for i in range(8):
            vd.record_share(i * 100.0)
        assert vd.difficulty == 1.0  # already at the floor: stays put

    def test_wall_clock_retarget_without_share_quota(self):
        config = VardiffConfig(target_interval=2.0, retarget_shares=1000,
                               retarget_seconds=30.0)
        vd = Vardiff(config, 8.0)
        assert vd.record_share(0.0) is None
        assert vd.record_share(40.0) == 8.0 / config.max_step

    def test_config_validation(self):
        for kwargs in ({"target_interval": 0.0}, {"retarget_shares": 0},
                       {"max_step": 1.0}, {"ema_alpha": 0.0},
                       {"deadband": -0.1}, {"min_difficulty": 0.0}):
            with pytest.raises(PoolError):
                VardiffConfig(**kwargs)

    @given(st.lists(
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        min_size=1, max_size=150,
    ))
    @settings(max_examples=150, deadline=None)
    def test_fuzz_bursty_arrival_invariants(self, gaps):
        """Any arrival pattern — bursts of zero-gap shares, long stalls —
        keeps the difficulty clamped, finite, and per-step bounded."""
        config = VardiffConfig()
        vd = Vardiff(config, 64.0)
        now = 0.0
        for gap in gaps:
            now += gap
            before = vd.difficulty
            updated = vd.record_share(now)
            assert config.min_difficulty <= vd.difficulty <= config.max_difficulty
            if updated is None:
                assert vd.difficulty == before  # no silent drift
            else:
                assert updated == vd.difficulty
                ratio = updated / before
                assert 1.0 / config.max_step - 1e-9 <= ratio
                assert ratio <= config.max_step + 1e-9
                # Deadband: a published change is always a real change.
                assert abs(ratio - 1.0) > config.deadband


# ======================================================================
# PPLNS payouts
# ======================================================================
class TestPPLNS:
    def test_splits_conserve_reward_exactly(self):
        window = PPLNSWindow(1000.0)
        for i in range(17):
            window.record_share(f"acct-{i % 5}", 1.0 + (i % 3))
        for reward in (1, 7, 50, 997):
            split = window.splits(reward)
            assert sum(split.values()) == reward
            assert all(amount > 0 for amount in split.values())

    def test_window_evicts_oldest_whole_shares(self):
        window = PPLNSWindow(10.0)
        for account in ("a", "b", "c", "d"):
            window.record_share(account, 4.0)
        # 16 total: dropping "a" still leaves >= 10, so "a" is evicted;
        # dropping "b" too would leave 8 < 10, so "b" stays.
        assert window.weights() == {"b": 4.0, "c": 4.0, "d": 4.0}
        assert window.total_score == 12.0

    def test_straddling_share_keeps_full_weight(self):
        window = PPLNSWindow(10.0)
        window.record_share("a", 8.0)
        window.record_share("b", 4.0)
        # 12 total but removing "a" leaves 4 < 10: "a" straddles the
        # window edge and keeps its whole weight (shares are atomic).
        assert window.weights() == {"a": 8.0, "b": 4.0}
        window.record_share("c", 8.0)  # now 20 - 8 >= 10: "a" goes
        assert window.weights() == {"b": 4.0, "c": 8.0}

    def test_empty_window_pays_nobody(self):
        assert PPLNSWindow(10.0).splits(50) == {}

    def test_largest_remainder_tie_break_is_deterministic(self):
        window = PPLNSWindow(100.0)
        for account in ("c", "a", "b"):
            window.record_share(account, 1.0)
        # 50 over three equal weights: 16 each + 2 remainder to the
        # lexically-first accounts.
        assert window.splits(50) == {"a": 17, "b": 17, "c": 16}

    def test_proportional_to_recent_work_only(self):
        window = PPLNSWindow(8.0)
        for _ in range(100):
            window.record_share("early", 1.0)
        for _ in range(6):
            window.record_share("late", 1.0)
        split = window.splits(80)
        # Window holds the last 8 units: 2 early + 6 late.
        assert split == {"early": 20, "late": 60}


# ======================================================================
# batch verifier
# ======================================================================
class TestBatchVerifier:
    def test_concurrent_shares_verify_in_one_batch(self):
        async def scenario():
            pow_fn = Sha256d()
            verifier = BatchVerifier(pow_fn, batch_max=64)
            verifier.start()
            payloads = [b"share-%d" % i for i in range(50)]
            digests = await asyncio.gather(
                *(verifier.digest(p) for p in payloads)
            )
            await verifier.stop()
            assert digests == [pow_fn.hash(p) for p in payloads]
            return verifier.stats

        stats = run(scenario())
        assert stats.shares == 50
        # All 50 enqueue before the drain task wakes: one dispatch.
        assert stats.batches == 1
        assert stats.max_batch == 50
        assert stats.mean_batch == 50.0

    def test_per_share_mode_dispatches_individually(self):
        async def scenario():
            pow_fn = Sha256d()
            verifier = BatchVerifier(pow_fn, batched=False)
            verifier.start()
            digests = [await verifier.digest(b"x%d" % i) for i in range(5)]
            await verifier.stop()
            assert digests == [pow_fn.hash(b"x%d" % i) for i in range(5)]
            return verifier.stats

        stats = run(scenario())
        assert stats.shares == 5
        assert stats.batches == 5
        assert stats.max_batch == 1

    def test_full_queue_raises_overloaded(self):
        async def scenario():
            verifier = BatchVerifier(Sha256d(), queue_max=1)
            # Drain task never started: the queue can only fill.
            first = asyncio.ensure_future(verifier.digest(b"one"))
            await asyncio.sleep(0)
            with pytest.raises(protocol.PoolProtocolError) as exc:
                await verifier.digest(b"two")
            assert exc.value.code == "overloaded"
            assert verifier.stats.rejected_overload == 1
            await verifier.stop()  # fails the still-queued share
            with pytest.raises(PoolError):
                await first

        run(scenario())

    def test_poisoned_share_fails_alone(self):
        class Picky:
            name = "picky"

            def hash(self, data: bytes) -> bytes:
                if data == b"poison":
                    raise PoolError("bad seed")
                return Sha256d().hash(data)

            def hash_batch(self, datas):
                return [self.hash(data) for data in datas]

        async def scenario():
            verifier = BatchVerifier(Picky(), batch_max=8)
            verifier.start()
            results = await asyncio.gather(
                verifier.digest(b"good-1"),
                verifier.digest(b"poison"),
                verifier.digest(b"good-2"),
                return_exceptions=True,
            )
            await verifier.stop()
            return results

        good1, poisoned, good2 = run(scenario())
        assert good1 == Sha256d().hash(b"good-1")
        assert good2 == Sha256d().hash(b"good-2")
        assert isinstance(poisoned, PoolError)


# ======================================================================
# server integration
# ======================================================================
class TestServerIntegration:
    def test_blind_client_shares_accepted(self):
        async def scenario():
            async with make_server() as server:
                async with PoolClient(
                    "127.0.0.1", server.port, "alice"
                ) as client:
                    accepted = await client.submit_shares(10)
                return accepted, server.stats, server.verifier.stats

        accepted, stats, verifier_stats = run(scenario())
        assert accepted == 10
        assert stats.accepted == 10
        assert stats.invalid == 0
        assert stats.score == 10.0
        assert verifier_stats.shares == 10

    def test_submit_before_subscribe(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                reply = await raw.request(
                    1, "mining.submit", {"job": "00000000", "nonce": 1}
                )
                await raw.close()
                return reply

        reply = run(scenario())
        assert reply["error"]["code"] == "not-subscribed"
        assert reply["result"] is None

    def test_submit_before_authorize(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                sub = await raw.request(1, "mining.subscribe", {})
                await raw.read()  # the initial notify
                reply = await raw.request(
                    2, "mining.submit",
                    {"job": "00000000", "nonce": sub["result"]["nonce_start"]},
                )
                await raw.close()
                return sub, reply

        sub, reply = run(scenario())
        assert sub["result"]["session"] == "s000000"
        assert sub["result"]["protocol"] == protocol.PROTOCOL_VERSION
        assert reply["error"]["code"] == "unauthorized"

    def test_malformed_json_disconnects(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.send_raw(b"this is not json\n")
                reply = await raw.read()
                eof = await raw.at_eof()
                await raw.close()
                return reply, eof, server.stats.protocol_errors

        reply, eof, errors = run(scenario())
        assert reply["error"]["code"] == "parse-error"
        assert eof
        assert errors == 1

    def test_oversize_line_disconnects(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.send_raw(
                    b'{"id":1,"method":"mining.subscribe","params":{"pad":"'
                    + b"x" * (2 * protocol.MAX_LINE_BYTES) + b'"}}\n'
                )
                eof = await raw.at_eof()
                await raw.close()
                return eof, server.stats.protocol_errors

        eof, errors = run(scenario())
        assert eof
        assert errors == 1

    def test_bad_request_keeps_connection_usable(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.send_raw(b'{"method":"mining.subscribe"}\n')
                bad = await raw.read()
                good = await raw.request(1, "mining.subscribe", {})
                await raw.close()
                return bad, good

        bad, good = run(scenario())
        assert bad["error"]["code"] == "bad-request"
        assert bad["id"] is None
        assert good["result"]["session"] == "s000000"

    def test_unknown_method(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                reply = await raw.request(5, "mining.extranonce", {})
                await raw.close()
                return reply

        reply = run(scenario())
        assert reply["error"]["code"] == "unknown-method"
        assert reply["id"] == 5

    def test_bad_nonce_flood_bans_the_session(self):
        async def scenario():
            async with make_server(ban_threshold=2.0) as server:
                raw = await RawClient().open(server.port)
                await raw.request(1, "mining.subscribe", {})
                await raw.read()  # notify
                await raw.request(2, "mining.authorize", {"account": "evil"})
                outside = 1 << 20  # beyond the 2**16 nonce range
                first = await raw.request(
                    3, "mining.submit", {"job": "00000000", "nonce": outside}
                )
                second = await raw.request(
                    4, "mining.submit", {"job": "00000000", "nonce": outside}
                )
                dropped = await raw.at_eof()
                await raw.close()
                # The banned session is refused on a fresh connection too.
                raw2 = await RawClient().open(server.port)
                reattach = await raw2.request(
                    1, "mining.subscribe", {"session": "s000000"}
                )
                await raw2.close()
                return first, second, dropped, reattach, server.stats

        first, second, dropped, reattach, stats = run(scenario())
        assert first["error"]["code"] == "bad-nonce"
        assert second["error"]["code"] == "bad-nonce"
        assert dropped  # crossing the threshold drops the connection
        assert reattach["error"]["code"] == "banned"
        assert stats.bans == 1
        assert stats.invalid == 2

    def test_duplicate_share_rejected(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.request(1, "mining.subscribe", {})
                await raw.read()
                await raw.request(2, "mining.authorize", {"account": "a"})
                ok = await raw.request(
                    3, "mining.submit", {"job": "00000000", "nonce": 7}
                )
                dup = await raw.request(
                    4, "mining.submit", {"job": "00000000", "nonce": 7}
                )
                await raw.close()
                return ok, dup, server.stats

        ok, dup, stats = run(scenario())
        assert ok["result"]["status"] == "accepted"
        assert dup["error"]["code"] == "duplicate-share"
        assert stats.duplicate == 1

    def test_stale_job_after_clean_rotation(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.request(1, "mining.subscribe", {})
                await raw.read()
                await raw.request(2, "mining.authorize", {"account": "a"})
                server.rotate_job(clean=True)
                notify = await raw.read()
                reply = await raw.request(
                    3, "mining.submit", {"job": "00000000", "nonce": 1}
                )
                await raw.close()
                return notify, reply, server.stats

        notify, reply, stats = run(scenario())
        assert notify["method"] == "mining.notify"
        assert notify["params"]["clean"] is True
        assert notify["params"]["job"] == "00000001"
        assert reply["error"]["code"] == "stale-job"
        assert stats.stale == 1
        assert stats.invalid == 0  # stale carries no ban weight

    def test_refresh_rotation_keeps_old_job_gradeable(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.request(1, "mining.subscribe", {})
                await raw.read()
                await raw.request(2, "mining.authorize", {"account": "a"})
                server.rotate_job(clean=False)
                await raw.read()  # the refresh notify
                reply = await raw.request(
                    3, "mining.submit", {"job": "00000000", "nonce": 1}
                )
                await raw.close()
                return reply

        reply = run(scenario())
        assert reply["result"]["status"] == "accepted"

    def test_session_reattach_preserves_state(self):
        async def scenario():
            async with make_server() as server:
                async with PoolClient(
                    "127.0.0.1", server.port, "alice"
                ) as client:
                    await client.submit_shares(3)
                    session_id = client.session
                    nonce_start = client.nonce_start
                # A new job between connections: the reattached client
                # restarts its nonce cursor without colliding with its
                # own already-submitted (job, nonce) pairs.
                server.rotate_job(clean=True)
                async with PoolClient(
                    "127.0.0.1", server.port, "alice", session=session_id
                ) as again:
                    await again.submit_shares(2)
                    reattached = (again.session, again.nonce_start)
                session = server.sessions[session_id]
                return (session_id, nonce_start), reattached, \
                    session.counters.accepted, server.stats.sessions

        issued, reattached, accepted, sessions = run(scenario())
        assert reattached == issued
        assert accepted == 5  # one session accumulated both connections
        assert sessions == 1

    def test_unknown_session_reattach_rejected(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                reply = await raw.request(
                    1, "mining.subscribe", {"session": "s00dead"}
                )
                await raw.close()
                return reply

        assert run(scenario())["error"]["code"] == "bad-request"

    def test_rotation_broadcasts_to_all_subscribed_clients(self):
        async def scenario():
            async with make_server() as server:
                async with PoolClient("127.0.0.1", server.port, "a") as one:
                    async with PoolClient(
                        "127.0.0.1", server.port, "b"
                    ) as two:
                        await one.wait_for_job()
                        await two.wait_for_job()
                        server.rotate_job(clean=True)
                        await asyncio.sleep(0.05)
                        return one.stats.notifies, two.stats.notifies

        notifies_one, notifies_two = run(scenario())
        assert notifies_one == 2  # initial + rotation
        assert notifies_two == 2

    def test_slow_client_disconnected_on_broadcast(self):
        async def scenario():
            async with make_server() as server:
                raw = await RawClient().open(server.port)
                await raw.request(1, "mining.subscribe", {})
                await raw.read()
                connection = next(iter(server._connections))
                # Swap in an already-full queue: exactly the state a
                # stalled reader leaves behind once the writer task is
                # blocked on the socket and the queue has filled up.
                connection.queue = asyncio.Queue(maxsize=1)
                connection.queue.put_nowait(b"wedged")
                server.rotate_job(clean=True)
                await asyncio.sleep(0.05)
                stats = server.stats.slow_disconnects
                await raw.close()
                return stats

        assert run(scenario()) == 1

    def test_vardiff_retarget_reaches_the_client(self):
        async def scenario():
            # Fake clock ticks 1s per share against a 2s target: shares
            # arrive 2x too fast, so the first retarget doubles difficulty.
            config = VardiffConfig(target_interval=2.0, retarget_shares=4)
            async with make_server(
                vardiff=True, vardiff_config=config, share_difficulty=4.0,
            ) as server:
                async with PoolClient(
                    "127.0.0.1", server.port, "fast", pow_fn=Sha256d()
                ) as client:
                    for _ in range(4):
                        await client.submit_shares(1)
                    await asyncio.sleep(0.05)
                    session = server.sessions[client.session]
                    return client.stats.retargets, client.difficulty, \
                        session.previous_difficulty

        retargets, difficulty, previous = run(scenario())
        assert retargets == 1
        assert difficulty == 8.0
        assert previous == 4.0

    def test_block_found_rotates_and_pays_out(self):
        async def scenario():
            chain = Blockchain(
                Sha256d(),
                genesis_bits=target_to_compact(difficulty_to_target(2.0)),
                schedule=RetargetSchedule(interval=10_000),
            )
            clock = itertools.count(100)
            source = ChainTemplateSource(chain, now_fn=lambda: next(clock))
            config = PoolConfig(vardiff=False, nonce_bits=16)
            async with PoolServer(Sha256d(), source, config) as server:
                async with PoolClient(
                    "127.0.0.1", server.port, "alice", pow_fn=Sha256d()
                ) as client:
                    for _ in range(200):
                        await client.submit_shares(1)
                        if server.stats.blocks_found:
                            break
                    return (client.stats.blocks, chain.height(),
                            server.payout_log, server.stats.blocks_found)

        blocks, height, payout_log, found = run(scenario())
        assert found >= 1
        assert blocks >= 1
        assert height == found
        record = payout_log[0]
        assert record["finder"] == "alice"
        assert sum(record["split"].values()) == record["reward"]
        assert record["split"] == {"alice": record["reward"]}

    def test_config_validation(self):
        for kwargs in ({"share_difficulty": 0.5}, {"nonce_bits": 0},
                       {"nonce_bits": 64}, {"ban_threshold": 0.0},
                       {"write_queue_max": 0}):
            with pytest.raises(PoolError):
                PoolConfig(**kwargs)


# ======================================================================
# golden session transcript
# ======================================================================
async def _golden_session() -> bytes:
    """Scripted session whose server-side byte transcript is pinned.

    Every source of nondeterminism is fixed: the static header, the fake
    clock, vardiff off, counter-derived session and job ids, sorted-key
    compact JSON.  Any wire-format change must update the golden file —
    deliberately, in the same commit.
    """
    transcript = bytearray()
    async with make_server() as server:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )

        async def speak(raw: bytes, replies: int) -> None:
            writer.write(raw)
            await writer.drain()
            for _ in range(replies):
                transcript.extend(await reader.readline())

        req = protocol.request
        # subscribe answers with the result and the current job notify.
        await speak(protocol.encode(req(1, "mining.subscribe",
                                        {"agent": "golden"})), 2)
        await speak(protocol.encode(req(2, "mining.authorize",
                                        {"account": "miner-a"})), 1)
        await speak(protocol.encode(req(3, "mining.submit",
                                        {"job": "00000000", "nonce": 1})), 1)
        await speak(protocol.encode(req(4, "mining.submit",
                                        {"job": "00000000", "nonce": 1})), 1)
        await speak(protocol.encode(req(5, "mining.submit",
                                        {"job": "00000000",
                                         "nonce": 1 << 20})), 1)
        await speak(protocol.encode(req(6, "foo.bar", {})), 1)
        await speak(b"{oops\n", 1)  # parse-error, then disconnect
        assert await reader.readline() == b""
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return bytes(transcript)


class TestGoldenSession:
    def test_transcript_matches_pinned_bytes(self):
        transcript = run(_golden_session())
        assert transcript == GOLDEN_PATH.read_bytes(), (
            "protocol serialization drifted from the golden transcript; "
            "if the change is intentional, regenerate "
            "tests/data/pool_golden_session.jsonl"
        )

    def test_transcript_is_reproducible(self):
        assert run(_golden_session()) == run(_golden_session())


# ======================================================================
# soak: 200-client churn
# ======================================================================
@pytest.mark.soak
class TestSoakChurn:
    def test_200_client_churn(self):
        """200 concurrent blind clients, two connect/submit/disconnect
        rounds each (the second reattaching its session).  Every share
        must be accepted and every session must survive its churn."""
        CLIENTS, SHARES = 200, 10

        async def one_client(port: int, index: int) -> str:
            async with PoolClient("127.0.0.1", port, f"acct-{index}") as c:
                accepted = await c.submit_shares(SHARES)
                assert accepted == SHARES
                session, resume = c.session, c.next_nonce
            # Churn: reconnect into the same session, keep submitting.
            async with PoolClient(
                "127.0.0.1", port, f"acct-{index}", session=session,
                resume_nonce=resume,
            ) as c:
                accepted = await c.submit_shares(SHARES)
                assert accepted == SHARES
                assert c.session == session
            return session

        async def scenario():
            async with make_server(
                nonce_bits=20, pplns_window=100_000.0
            ) as server:
                sessions = await asyncio.gather(
                    *(one_client(server.port, i) for i in range(CLIENTS))
                )
                return sessions, server.stats, server.verifier.stats

        sessions, stats, verifier_stats = run(scenario(), timeout=90.0)
        assert len(set(sessions)) == CLIENTS
        assert stats.sessions == CLIENTS
        assert stats.accepted == 2 * CLIENTS * SHARES
        assert stats.invalid == 0
        assert stats.bans == 0
        assert stats.connections == 2 * CLIENTS
        assert stats.active_connections == 0
        assert verifier_stats.shares == 2 * CLIENTS * SHARES
        # Concurrency must actually have batched verification work.
        assert verifier_stats.max_batch > 1
