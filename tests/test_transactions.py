"""Lamport signatures, transactions, ledger, and mempool tests."""

import hashlib

import pytest

from repro.blockchain.lamport import (
    ADDRESS_BYTES,
    SIGNATURE_BYTES,
    LamportKeyPair,
    Wallet,
    verify,
)
from repro.blockchain.ledger import BLOCK_REWARD, Ledger
from repro.blockchain.mempool import Mempool
from repro.blockchain.transaction import TRANSACTION_BYTES, Transaction
from repro.errors import ChainError


def wallet(tag: str) -> Wallet:
    return Wallet(hashlib.sha256(tag.encode()).digest())


@pytest.fixture()
def funded():
    """(ledger, alice, bob) with alice holding 1000."""
    ledger = Ledger()
    alice = wallet("alice")
    bob = wallet("bob")
    ledger.register(alice.address, 1000)
    return ledger, alice, bob


class TestLamport:
    def test_sign_verify_round_trip(self):
        pair = LamportKeyPair(b"\x01" * 32)
        signature = pair.sign(b"message")
        assert verify(pair.address, b"message", signature)

    def test_wrong_message_rejected(self):
        pair = LamportKeyPair(b"\x01" * 32)
        signature = pair.sign(b"message")
        assert not verify(pair.address, b"other", signature)

    def test_tampered_signature_rejected(self):
        pair = LamportKeyPair(b"\x01" * 32)
        signature = bytearray(pair.sign(b"message"))
        signature[10] ^= 1
        assert not verify(pair.address, b"message", bytes(signature))

    def test_wrong_address_rejected(self):
        a = LamportKeyPair(b"\x01" * 32)
        b = LamportKeyPair(b"\x02" * 32)
        assert not verify(b.address, b"m", a.sign(b"m"))

    def test_deterministic_keys(self):
        assert LamportKeyPair(b"\x07" * 32).address == LamportKeyPair(b"\x07" * 32).address

    def test_sizes(self):
        pair = LamportKeyPair(b"\x03" * 32)
        assert len(pair.address) == ADDRESS_BYTES
        assert len(pair.sign(b"x")) == SIGNATURE_BYTES

    def test_malformed_inputs_rejected(self):
        assert not verify(b"short", b"m", b"\x00" * SIGNATURE_BYTES)
        assert not verify(b"\x00" * 32, b"m", b"short")
        with pytest.raises(ChainError):
            LamportKeyPair(b"short")


class TestWallet:
    def test_one_time_enforced(self):
        w = wallet("w")
        w.sign(0, b"first")
        with pytest.raises(ChainError):
            w.sign(0, b"second")

    def test_per_nonce_keys_differ(self):
        w = wallet("w")
        assert w.address_for(0) != w.address_for(1)

    def test_identity_is_key_zero(self):
        w = wallet("w")
        assert w.address == w.address_for(0)

    def test_negative_nonce_rejected(self):
        with pytest.raises(ChainError):
            wallet("w").keypair(-1)


class TestTransaction:
    def test_create_and_verify(self, funded):
        _, alice, bob = funded
        tx = Transaction.create(alice, bob.address, amount=100, fee=5, nonce=0)
        assert tx.verify_signature(alice.address)

    def test_serialize_round_trip(self, funded):
        _, alice, bob = funded
        tx = Transaction.create(alice, bob.address, 100, 5, 0)
        again = Transaction.deserialize(tx.serialize())
        assert again == tx
        assert len(tx.serialize()) == TRANSACTION_BYTES

    def test_tampered_amount_fails_verification(self, funded):
        _, alice, bob = funded
        tx = Transaction.create(alice, bob.address, 100, 5, 0)
        forged = Transaction(
            sender=tx.sender, recipient=tx.recipient, amount=999, fee=tx.fee,
            nonce=tx.nonce, next_key=tx.next_key, signature=tx.signature,
        )
        assert not forged.verify_signature(alice.address)

    def test_tx_id_excludes_signature(self, funded):
        _, alice, bob = funded
        tx = Transaction.create(alice, bob.address, 100, 5, 0)
        assert tx.tx_id() == Transaction.deserialize(tx.serialize()).tx_id()

    def test_field_validation(self, funded):
        _, alice, bob = funded
        with pytest.raises(ChainError):
            Transaction(b"short", bob.address, 1, 1, 0, alice.address,
                        b"\x00" * SIGNATURE_BYTES)


class TestLedger:
    def test_transfer_moves_balance(self, funded):
        ledger, alice, bob = funded
        tx = Transaction.create(alice, bob.address, 100, 5, 0)
        ledger.apply_transaction(tx)
        assert ledger.balance(alice.address) == 895
        assert ledger.balance(bob.address) == 100
        assert ledger.nonce(alice.address) == 1

    def test_key_ladder_advances(self, funded):
        ledger, alice, bob = funded
        tx0 = Transaction.create(alice, bob.address, 10, 1, 0)
        ledger.apply_transaction(tx0)
        # Nonce 1 must be signed by the key announced in tx0.
        tx1 = Transaction.create(alice, bob.address, 10, 1, 1)
        ledger.apply_transaction(tx1)
        assert ledger.nonce(alice.address) == 2

    def test_replayed_transaction_rejected(self, funded):
        ledger, alice, bob = funded
        tx = Transaction.create(alice, bob.address, 100, 5, 0)
        ledger.apply_transaction(tx)
        with pytest.raises(ChainError):
            ledger.apply_transaction(tx)  # nonce now stale

    def test_wrong_key_rejected(self, funded):
        ledger, alice, bob = funded
        mallory = wallet("mallory")
        forged = Transaction.create(mallory, bob.address, 100, 5, 0)
        forged = Transaction(
            sender=alice.address, recipient=forged.recipient, amount=100,
            fee=5, nonce=0, next_key=forged.next_key,
            signature=forged.signature,
        )
        with pytest.raises(ChainError):
            ledger.apply_transaction(forged)

    def test_insufficient_balance_rejected(self, funded):
        ledger, alice, bob = funded
        tx = Transaction.create(alice, bob.address, 999, 5, 0)
        with pytest.raises(ChainError):
            ledger.apply_transaction(tx)

    def test_unknown_sender_rejected(self, funded):
        ledger, _, bob = funded
        stranger = wallet("stranger")
        tx = Transaction.create(stranger, bob.address, 1, 0, 0)
        with pytest.raises(ChainError):
            ledger.apply_transaction(tx)

    def test_apply_block_credits_miner(self, funded):
        ledger, alice, bob = funded
        miner = wallet("miner")
        txs = [Transaction.create(alice, bob.address, 100, 5, 0),
               Transaction.create(alice, bob.address, 50, 3, 1)]
        reward = ledger.apply_block(txs, miner.address)
        assert reward == BLOCK_REWARD + 8
        assert ledger.balance(miner.address) == BLOCK_REWARD + 8

    def test_apply_block_atomic(self, funded):
        ledger, alice, bob = funded
        miner = wallet("miner")
        good = Transaction.create(alice, bob.address, 100, 5, 0)
        bad = Transaction.create(alice, bob.address, 100000, 5, 1)  # overdraft
        with pytest.raises(ChainError):
            ledger.apply_block([good, bad], miner.address)
        # Unchanged: the good transaction rolled back too.
        assert ledger.balance(alice.address) == 1000
        assert ledger.nonce(alice.address) == 0

    def test_supply_conservation_plus_subsidy(self, funded):
        ledger, alice, bob = funded
        miner = wallet("miner")
        before = ledger.total_supply()
        ledger.apply_block([Transaction.create(alice, bob.address, 100, 5, 0)],
                           miner.address)
        assert ledger.total_supply() == before + BLOCK_REWARD

    def test_double_register_rejected(self, funded):
        ledger, alice, _ = funded
        with pytest.raises(ChainError):
            ledger.register(alice.address, 5)


class TestMempool:
    def test_fee_priority_selection(self, funded):
        ledger, alice, bob = funded
        carol = wallet("carol")
        ledger.register(carol.address, 1000)
        pool = Mempool(ledger)
        cheap = Transaction.create(alice, bob.address, 10, 1, 0)
        rich = Transaction.create(carol, bob.address, 10, 9, 0)
        pool.add(cheap)
        pool.add(rich)
        assert pool.select(1) == [rich]

    def test_nonce_order_respected(self, funded):
        ledger, alice, bob = funded
        pool = Mempool(ledger)
        tx0 = Transaction.create(alice, bob.address, 10, 1, 0)   # low fee
        tx1 = Transaction.create(alice, bob.address, 10, 99, 1)  # high fee
        pool.add(tx0)
        pool.add(tx1)
        selected = pool.select(2)
        assert selected == [tx0, tx1]  # nonce order wins over fee order

    def test_nonce_gap_rejected_on_admission(self, funded):
        ledger, alice, bob = funded
        pool = Mempool(ledger)
        with pytest.raises(ChainError):
            pool.add(Transaction.create(alice, bob.address, 10, 1, 5))

    def test_duplicate_rejected(self, funded):
        ledger, alice, bob = funded
        pool = Mempool(ledger)
        tx = Transaction.create(alice, bob.address, 10, 1, 0)
        pool.add(tx)
        with pytest.raises(ChainError):
            pool.add(tx)

    def test_remove_included_and_revalidate(self, funded):
        ledger, alice, bob = funded
        miner = wallet("miner")
        pool = Mempool(ledger)
        tx0 = Transaction.create(alice, bob.address, 10, 1, 0)
        tx1 = Transaction.create(alice, bob.address, 10, 1, 1)
        pool.add(tx0)
        pool.add(tx1)
        selected = pool.select(1)
        ledger.apply_block(selected, miner.address)
        pool.remove_included(selected)
        assert len(pool) == 1
        assert pool.revalidate() == 0  # tx1 still valid (nonce 1 is next)

    def test_revalidate_evicts_stale(self, funded):
        ledger, alice, bob = funded
        miner = wallet("miner")
        pool = Mempool(ledger)
        tx0 = Transaction.create(alice, bob.address, 10, 1, 0)
        pool.add(tx0)
        # The same tx confirms via another path; pool copy is now stale.
        ledger.apply_block([tx0], miner.address)
        assert pool.revalidate() == 1
        assert len(pool) == 0

    def test_capacity_enforced(self, funded):
        ledger, alice, bob = funded
        pool = Mempool(ledger, max_size=1)
        pool.add(Transaction.create(alice, bob.address, 10, 1, 0))
        with pytest.raises(ChainError):
            pool.add(Transaction.create(alice, bob.address, 10, 1, 1))


class TestEndToEndBlock:
    def test_signed_transactions_in_mined_block(self, funded):
        """Full stack: mempool -> block assembly -> PoW -> chain -> ledger."""
        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.block import Block
        from repro.blockchain.chain import Blockchain
        from repro.blockchain.difficulty import RetargetSchedule
        from repro.blockchain.miner import mine_block
        from repro.core.pow import difficulty_to_target, target_to_compact

        ledger, alice, bob = funded
        miner = wallet("miner")
        pool = Mempool(ledger)
        pool.add(Transaction.create(alice, bob.address, 100, 5, 0))
        pool.add(Transaction.create(alice, bob.address, 200, 7, 1))

        selected = pool.select(10)
        chain = Blockchain(
            Sha256d(),
            genesis_bits=target_to_compact(difficulty_to_target(16.0)),
            schedule=RetargetSchedule(interval=10_000),
        )
        block = Block.build(
            prev_hash=chain.tip_id,
            transactions=[tx.serialize() for tx in selected],
            timestamp=30,
            bits=chain.expected_bits(chain.tip_id),
        )
        mined = mine_block(block, Sha256d(), max_attempts=100_000)
        chain.add_block(mined.block)

        # A validating node re-parses the block body and applies it.
        parsed = [Transaction.deserialize(raw) for raw in mined.block.transactions]
        ledger.apply_block(parsed, miner.address)
        pool.remove_included(parsed)

        assert ledger.balance(bob.address) == 300
        assert ledger.balance(alice.address) == 1000 - 300 - 12
        assert ledger.balance(miner.address) == BLOCK_REWARD + 12
        assert len(pool) == 0
