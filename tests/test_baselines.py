"""Baseline PoW function tests."""

import hashlib

import pytest

from repro.baselines.equihash_like import EquihashLike
from repro.baselines.randomx_like import RandomXLike
from repro.baselines.scrypt_like import ScryptLike, salsa20_8
from repro.baselines.sha256d import Sha256d
from repro.errors import PowError


class TestSha256d:
    def test_matches_reference(self):
        expected = hashlib.sha256(hashlib.sha256(b"hello").digest()).digest()
        assert Sha256d().hash(b"hello") == expected

    def test_resource_profile_is_alu_only(self):
        profile = Sha256d.resource_profile()
        assert profile["int_alu"] > 0.5
        assert profile["fp"] == 0.0
        assert profile["l3"] == 0.0


class TestSalsa:
    def test_known_zero_vector(self):
        # Salsa20 core of the all-zero block is all zeros (feed-forward of
        # zeros plus zero rounds).
        assert salsa20_8([0] * 16) == [0] * 16

    def test_diffusion(self):
        out = salsa20_8([1] + [0] * 15)
        assert out != [1] + [0] * 15
        assert sum(1 for w in out if w != 0) > 8

    def test_wrong_size_rejected(self):
        with pytest.raises(PowError):
            salsa20_8([0] * 15)

    def test_outputs_are_u32(self):
        out = salsa20_8(list(range(16)))
        assert all(0 <= w < 2**32 for w in out)


class TestScryptLike:
    def test_deterministic(self):
        assert ScryptLike(n=64).hash(b"x") == ScryptLike(n=64).hash(b"x")

    def test_input_sensitivity(self):
        fn = ScryptLike(n=64)
        assert fn.hash(b"x") != fn.hash(b"y")

    def test_n_changes_output(self):
        assert ScryptLike(n=64).hash(b"x") != ScryptLike(n=128).hash(b"x")

    def test_memory_grows_with_n(self):
        assert ScryptLike(n=512).memory_bytes() == 4 * ScryptLike(n=128).memory_bytes()

    def test_invalid_n_rejected(self):
        with pytest.raises(PowError):
            ScryptLike(n=100)

    def test_resource_profile_memory_heavy(self):
        profile = ScryptLike(n=1024).resource_profile()
        assert profile["l1"] > 0.5
        assert profile["fp"] == 0.0

    def test_digest_is_32_bytes(self):
        assert len(ScryptLike(n=64).hash(b"abc")) == 32


class TestEquihashLike:
    def test_parameters_validated(self):
        with pytest.raises(PowError):
            EquihashLike(n=49, k=3)  # (k+1) must divide n
        with pytest.raises(PowError):
            EquihashLike(n=48, k=0)

    @staticmethod
    def _solve_some(fn, tag):
        """Solutions for the first of a few seeds that has any (a single
        Wagner run finds none for some seeds, as in real Equihash)."""
        for i in range(25):
            seed = f"{tag}-{i}".encode()
            solutions = fn.solve(seed)
            if solutions:
                return seed, solutions
        raise AssertionError("no solutions across 25 seeds — solver broken")

    def test_solver_finds_verified_solutions(self):
        fn = EquihashLike(n=32, k=3)
        seed, solutions = self._solve_some(fn, "verify")
        for indices in solutions[:5]:
            assert EquihashLike.verify_solution(seed, indices, 32, 3)

    def test_solution_size_is_2_to_k(self):
        fn = EquihashLike(n=32, k=3)
        _, solutions = self._solve_some(fn, "size")
        assert all(len(s) == 8 for s in solutions)

    def test_verify_rejects_duplicates(self):
        assert not EquihashLike.verify_solution(b"s", tuple([1] * 8), 32, 3)

    def test_verify_rejects_wrong_xor(self):
        assert not EquihashLike.verify_solution(b"s", tuple(range(8)), 32, 3)

    def test_hash_deterministic_and_sensitive(self):
        fn = EquihashLike(n=32, k=3)
        assert fn.hash(b"a") == fn.hash(b"a")
        assert fn.hash(b"a") != fn.hash(b"b")

    def test_distinct_index_constraint_respected(self):
        fn = EquihashLike(n=32, k=3)
        _, solutions = self._solve_some(fn, "distinct")
        for indices in solutions:
            assert len(set(indices)) == len(indices)


class TestRandomXLike:
    @pytest.fixture(scope="class")
    def fn(self):
        return RandomXLike(program_size=64, loop_trips=16)

    def test_deterministic(self, fn):
        assert fn.hash(b"block") == fn.hash(b"block")

    def test_input_sensitivity(self, fn):
        assert fn.hash(b"block") != fn.hash(b"block2")

    def test_program_is_pure_function_of_seed(self, fn):
        seed = hashlib.sha256(b"p").digest()
        assert (
            fn.generate_program(seed).fingerprint()
            == fn.generate_program(seed).fingerprint()
        )

    def test_different_seeds_different_programs(self, fn):
        a = fn.generate_program(hashlib.sha256(b"1").digest())
        b = fn.generate_program(hashlib.sha256(b"2").digest())
        assert a.fingerprint() != b.fingerprint()

    def test_uniform_mix_across_units(self, fn):
        """The RandomX philosophy: every execution unit sees real work."""
        _, counters = fn.run(hashlib.sha256(b"mix").digest())
        mix = counters.mix_fractions()
        for key in ("int_alu", "int_mul", "fp_alu", "load", "store", "vector"):
            assert mix[key] > 0.05, key

    def test_few_branches_unlike_hashcore(self, fn):
        # Counted loops only: branch share far below a Leela-like profile.
        _, counters = fn.run(hashlib.sha256(b"br").digest())
        assert counters.mix_fractions()["branch"] < 0.05

    def test_invalid_params_rejected(self):
        with pytest.raises(PowError):
            RandomXLike(program_size=4)
        with pytest.raises(PowError):
            RandomXLike(loop_trips=0)


class TestPowFunctionInterface:
    def test_all_baselines_satisfy_protocol(self):
        from repro.core.pow import PowFunction

        for fn in (Sha256d(), ScryptLike(n=64), EquihashLike(n=32, k=3),
                   RandomXLike(program_size=32, loop_trips=4)):
            assert isinstance(fn, PowFunction)
            digest = fn.hash(b"probe")
            assert isinstance(digest, bytes) and len(digest) == 32
