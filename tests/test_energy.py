"""Energy-model tests, including the §II bandwidth-hardness observation."""

import pytest

from repro.machine.cpu import Machine
from repro.machine.energy import EnergyBreakdown, EnergyModel, EnergyParams
from repro.machine.perf_counters import PerfCounters
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


@pytest.fixture(scope="module")
def workload_energy(machine, model):
    out = {}
    for name in ("leela", "graph", "matrix"):
        result = get_workload(name).build().run(machine)
        out[name] = (model.energy_of(result.counters), result.counters)
    return out


class TestAccounting:
    def test_empty_run_zero_energy(self, model):
        breakdown = model.energy_of(PerfCounters())
        assert breakdown.total == 0.0

    def test_components_sum_to_total(self, model):
        counters = PerfCounters(retired=100, cycles=50.0, loads=10, l1_hits=8)
        counters.class_counts[0] = 100
        breakdown = model.energy_of(counters)
        assert breakdown.total == pytest.approx(
            breakdown.compute + breakdown.memory + breakdown.pipeline + breakdown.static
        )

    def test_dram_dominates_when_missing(self, model):
        hits = PerfCounters(retired=100, cycles=100.0, loads=100, l1_hits=100)
        misses = PerfCounters(retired=100, cycles=100.0, loads=100, l1_hits=0,
                              dram_accesses=100)
        assert model.energy_of(misses).memory > 50 * model.energy_of(hits).memory

    def test_fp_costs_more_than_int(self, model):
        int_run = PerfCounters(retired=100, cycles=25.0)
        int_run.class_counts[0] = 100
        fp_run = PerfCounters(retired=100, cycles=25.0)
        fp_run.class_counts[2] = 100
        assert model.energy_of(fp_run).compute > 3 * model.energy_of(int_run).compute

    def test_custom_params(self):
        model = EnergyModel(EnergyParams(dram_access=0.0))
        counters = PerfCounters(retired=10, cycles=10.0, dram_accesses=100)
        assert model.energy_of(counters).memory == 0.0

    def test_per_instruction_guard(self):
        assert EnergyBreakdown(1.0, 1.0, 1.0, 1.0).per_instruction(0) == 4.0


class TestWorkloadEnergy:
    def test_memory_bound_workload_energy_is_memory_and_waiting(self, workload_energy):
        """The [10] energy argument: a pointer-chasing (bandwidth-bound)
        workload spends almost all energy on DRAM accesses plus the static
        power burned waiting for them — barely any on compute."""
        graph, _ = workload_energy["graph"]
        non_compute = (graph.memory + graph.static) / graph.total
        assert graph.memory_share() > 0.3
        assert non_compute > 0.85
        compute_share = graph.compute / graph.total
        leela, _ = workload_energy["leela"]
        assert compute_share < 0.5 * (leela.compute / leela.total)

    def test_energy_per_instruction_ordering(self, workload_energy):
        """DRAM-heavy code costs far more energy per instruction."""
        epi = {
            name: breakdown.per_instruction(counters.retired)
            for name, (breakdown, counters) in workload_energy.items()
        }
        assert epi["graph"] > 3 * epi["leela"]

    def test_fp_workload_compute_share(self, workload_energy):
        matrix, _ = workload_energy["matrix"]
        leela, _ = workload_energy["leela"]
        assert matrix.compute > 0  # sanity
        # FP/vector ops make matrix's compute component relatively larger.
        assert (matrix.compute / matrix.total) > (leela.compute / leela.total)


class TestWidgetEnergy:
    def test_widget_energy_tracks_profile(self, widget_population, machine, model):
        """Widgets inherit the profiled workload's energy character:
        cache-friendly integer code, so memory share stays moderate."""
        shares = []
        for _, result in widget_population:
            breakdown = model.energy_of(result.counters)
            shares.append(breakdown.memory_share())
        mean_share = sum(shares) / len(shares)
        # Test-scale widgets are cold-miss heavy, so the band is wide; the
        # point is that memory is a real but not exclusive consumer.
        assert 0.1 < mean_share < 0.9
