"""ASIC-advantage model tests — the §II/§III economics."""

import pytest

from repro.asicmodel.advantage import (
    AsicModel,
    PowTraits,
    utilization_from_counters,
)
from repro.asicmodel.resources import GPP_RESOURCES, total_area, total_power
from repro.baselines.randomx_like import RandomXLike
from repro.baselines.scrypt_like import ScryptLike
from repro.baselines.sha256d import Sha256d
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def model():
    return AsicModel()


@pytest.fixture(scope="module")
def hashcore_advantage(model, widget_population, machine):
    # Average utilization over the shared widget population.
    totals: dict[str, float] = {}
    for _, result in widget_population:
        u = utilization_from_counters(result.counters, machine.config)
        for key, value in u.items():
            totals[key] = totals.get(key, 0.0) + value
    mean_u = {k: v / len(widget_population) for k, v in totals.items()}
    return model.advantage(
        "hashcore", mean_u, PowTraits(fixed_function=False, requires_generation=True)
    )


class TestResources:
    def test_inventory_totals_positive(self):
        assert total_area() > 0
        assert total_power() > 0

    def test_llc_is_largest_block(self):
        # Die-shot reality check: L3 dominates a server die.
        biggest = max(GPP_RESOURCES, key=lambda r: r.area)
        assert biggest.name == "l3"

    def test_programmability_resources_marked(self):
        marked = {r.name for r in GPP_RESOURCES if r.programmability}
        assert marked == {"frontend", "branch_predictor", "ooo_window"}


class TestAdvantageModel:
    def test_sha256d_has_huge_advantage(self, model):
        adv = model.advantage(
            "sha256d", Sha256d.resource_profile(), PowTraits(fixed_function=True)
        )
        assert adv.area_advantage > 30
        assert adv.energy_advantage > 20

    def test_scrypt_advantage_smaller_than_sha(self, model):
        sha = model.advantage(
            "sha256d", Sha256d.resource_profile(), PowTraits(fixed_function=True)
        )
        scrypt = model.advantage(
            "scrypt", ScryptLike(n=1024).resource_profile(), PowTraits(fixed_function=True)
        )
        assert 1 < scrypt.area_advantage < sha.area_advantage

    def test_hashcore_advantage_near_one(self, hashcore_advantage):
        """The paper's headline claim: the GPP is already a near-optimal
        ASIC for HashCore."""
        assert hashcore_advantage.area_advantage < 2.0
        assert hashcore_advantage.energy_advantage < 2.0

    def test_hashcore_beats_every_baseline(self, model, hashcore_advantage, machine):
        baselines = {
            "sha256d": (Sha256d.resource_profile(), PowTraits(True)),
            "scrypt": (ScryptLike(n=1024).resource_profile(), PowTraits(True)),
        }
        rx = RandomXLike(program_size=64, loop_trips=8)
        _, counters = rx.run(b"\x07" * 32)
        baselines["randomx"] = (
            utilization_from_counters(counters, rx.machine.config),
            PowTraits(False),
        )
        for name, (profile, traits) in baselines.items():
            adv = model.advantage(name, profile, traits)
            assert (
                hashcore_advantage.area_advantage <= adv.area_advantage + 0.15
            ), name

    def test_random_code_keeps_programmability(self, model):
        # Even with tiny utilization, a random-code PoW cannot drop the
        # frontend / OoO machinery.
        u = {r.name: 0.1 for r in GPP_RESOURCES}
        adv = model.advantage("rnd", u, PowTraits(fixed_function=False))
        assert "frontend" in adv.kept
        assert "ooo_window" in adv.kept

    def test_fixed_function_drops_programmability(self, model):
        u = {r.name: 0.9 for r in GPP_RESOURCES}
        adv = model.advantage("fix", u, PowTraits(fixed_function=True))
        assert "frontend" not in adv.kept
        assert "branch_predictor" not in adv.kept

    def test_branchless_random_code_drops_predictor(self, model):
        u = {r.name: 0.5 for r in GPP_RESOURCES}
        u["branch_predictor"] = 0.0
        adv = model.advantage("rx", u, PowTraits(fixed_function=False))
        assert "branch_predictor" not in adv.kept

    def test_generation_requirement_costs_area(self, model):
        u = {r.name: 0.5 for r in GPP_RESOURCES}
        without = model.advantage("a", u, PowTraits(False, requires_generation=False))
        with_gen = model.advantage("b", u, PowTraits(False, requires_generation=True))
        assert with_gen.asic_area > without.asic_area
        assert with_gen.area_advantage < without.area_advantage

    def test_monotonic_in_utilization(self, model):
        low = {r.name: 0.1 for r in GPP_RESOURCES}
        high = {r.name: 0.9 for r in GPP_RESOURCES}
        adv_low = model.advantage("low", low, PowTraits(True))
        adv_high = model.advantage("high", high, PowTraits(True))
        assert adv_low.area_advantage >= adv_high.area_advantage

    def test_out_of_range_utilization_rejected(self, model):
        with pytest.raises(ConfigError):
            model.advantage("bad", {"int_alu": 1.5}, PowTraits(True))

    def test_row_renders(self, model):
        adv = model.advantage("x", Sha256d.resource_profile(), PowTraits(True))
        assert "x" in adv.row()


class TestUtilizationMeasurement:
    def test_values_in_unit_interval(self, widget_population, machine):
        for _, result in widget_population:
            u = utilization_from_counters(result.counters, machine.config)
            for key, value in u.items():
                assert 0.0 <= value <= 1.0, key

    def test_widgets_exercise_table_one_resources(self, widget_population, machine):
        """§IV-A chip utilization: the structures Table I targets all see
        real work from the widget population."""
        totals: dict[str, float] = {}
        for _, result in widget_population:
            for key, value in utilization_from_counters(
                result.counters, machine.config
            ).items():
                totals[key] = totals.get(key, 0.0) + value
        mean = {k: v / len(widget_population) for k, v in totals.items()}
        for resource in ("frontend", "int_alu", "int_mul", "branch_predictor",
                         "ooo_window", "l1", "l2"):
            assert mean[resource] > 0.02, resource
