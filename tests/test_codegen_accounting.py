"""Code-generation accounting: emitted code must match the generator's
cost model exactly — the property that makes a spec's expected dynamic
size an unbiased estimate of the real one."""

import pytest

from repro.isa.opcodes import BRANCH_OPCODES, Opcode
from repro.widgetgen.codegen import compile_spec
from repro.widgetgen.ir import token_cost

from tests.conftest import seed_of


def _static_counts(spec) -> tuple[int, int]:
    """(expected static instructions, expected static branches) for the
    body region of the compiled program (loops included, preamble and
    epilogue excluded)."""
    instructions = 0
    branches = 0
    for block in spec.blocks:
        instructions += sum(token_cost(t) for t in block.pre)
        instructions += sum(token_cost(t) for t in block.body)
        if block.guard is not None:
            instructions += 2  # mix xor + branch
            branches += 1
    for _ in spec.loops:
        instructions += 2  # counter MOVI + LOOPNZ
        branches += 1
    instructions += 2  # outer counter MOVI + LOOPNZ
    branches += 1
    return instructions, branches


_PREAMBLE = 13 + 2 * 6 + 4  # movis/cvtifs + fp init pairs + vbroadcasts
_EPILOGUE = 7  # vreduce/fadd x2 + cvtfi + xor + halt


class TestStaticAccounting:
    @pytest.mark.parametrize("tag", ["a", "b", "c", "d", "e", "f"])
    def test_compiled_size_matches_token_accounting(self, generator, tag):
        spec = generator.spec(seed_of(tag))
        program = compile_spec(spec)
        expected_body, _ = _static_counts(spec)
        assert len(program) == _PREAMBLE + expected_body + _EPILOGUE

    @pytest.mark.parametrize("tag", ["g", "h", "i"])
    def test_static_branch_count_matches(self, generator, tag):
        spec = generator.spec(seed_of(tag))
        program = compile_spec(spec)
        emitted_branches = sum(
            1 for ins in program.instructions
            if ins.op in BRANCH_OPCODES and ins.op != int(Opcode.JMP)
        )
        _, expected_branches = _static_counts(spec)
        assert emitted_branches == expected_branches

    def test_no_jmp_in_widgets(self, generator):
        # Widget control flow is guards + counted loops only; JMP would be
        # an unaccounted branch.
        spec = generator.spec(seed_of("nojmp"))
        program = compile_spec(spec)
        assert all(ins.op != int(Opcode.JMP) for ins in program.instructions)


class TestDynamicAccounting:
    def test_expected_instructions_unbiased(self, generator, machine):
        """Across a small population, realised dynamic counts average to
        the spec expectation within a few percent."""
        ratios = []
        for tag in range(8):
            widget = generator.widget(seed_of(f"dyn-{tag}"))
            result = widget.execute(machine)
            ratios.append(
                result.counters.retired / widget.spec.expected_instructions()
            )
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.85 < mean_ratio < 1.15

    def test_branch_count_expectation(self, generator, machine):
        """Dynamic branch counts match the structural expectation (guards
        execute `reps` times, loops `trips` times, plus the outer loop)."""
        widget = generator.widget(seed_of("branches"))
        spec = widget.spec
        reps = spec.block_repetitions()
        per_iter = (
            sum(reps[i] for i, blk in enumerate(spec.blocks) if blk.guard)
            + sum(l.trips for l in spec.loops)
            + 1
        )
        expected = per_iter * spec.outer_trips
        result = widget.execute(machine)
        assert result.counters.branches == pytest.approx(expected, rel=0.02)
