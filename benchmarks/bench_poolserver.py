"""Pool-server load benchmark: sustained shares/s under client fan-in.

Drives a real :class:`~repro.pool.server.PoolServer` over loopback TCP
with swarms of blind :class:`~repro.pool.client.PoolClient` load
generators (share difficulty 1.0, vardiff off: every submission is
accepted, no client-side hashing), so the measured work is the server's
own pipeline — framing, grading, batched PoW verification, accounting.

Three measured rows, plus a small committed gate point:

* 100 clients, **batched** verification (the production path);
* 100 clients, **per-share** verification — the baseline the batched
  path must beat: identical protocol work, but one executor dispatch per
  share instead of per batch;
* 1000 clients, batched — the concurrency headroom point; the run fails
  loudly if any share errors or a client drops.

SHA-256d keeps per-digest cost trivial, which is the point: with cheap
hashing the *dispatch overhead* dominates, so the batched-vs-per-share
gap isolates exactly what batching amortizes.  (With HashCore the gap
only grows — ``hash_batch`` also dedups and lockstep-groups.)

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_poolserver.py

Writes ``BENCH_pool.json``; ``check_regression.py`` re-runs the gate
point against the committed figure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import time

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import BlockHeader
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.pool.client import PoolClient
from repro.pool.jobs import StaticTemplateSource
from repro.pool.server import PoolConfig, PoolServer

#: A block target no blind share meets: the bench never rotates jobs.
_HARD_BITS = target_to_compact(difficulty_to_target(2.0**40))

#: Clients are connected in waves so the listener backlog never drops a
#: connection at the 1000-client point.
_CONNECT_WAVE = 100

#: In-flight submissions per client: a stop-and-wait load generator
#: would serialize each client on its share acks and starve the
#: verification batcher; real miners keep hashing with acks on the wire.
_LANES = 8

#: The small committed point ``check_regression.py`` re-runs.
GATE_CLIENTS = 20
GATE_SHARES = 48


def _server(batched: bool) -> PoolServer:
    header = BlockHeader(1, b"\x00" * 32, b"\x33" * 32, 1234, _HARD_BITS, 0)
    return PoolServer(
        Sha256d(),
        StaticTemplateSource(header),
        PoolConfig(
            share_difficulty=1.0,
            vardiff=False,
            nonce_bits=20,
            batched_verify=batched,
            verify_queue_max=65_536,
            pplns_window=1_000_000.0,
        ),
    )


async def _run_point_async(
    clients: int, shares_per_client: int, batched: bool
) -> dict:
    async with _server(batched) as server:
        swarm = [
            PoolClient("127.0.0.1", server.port, f"acct-{i:04d}")
            for i in range(clients)
        ]
        try:
            for start in range(0, clients, _CONNECT_WAVE):
                await asyncio.gather(
                    *(c.connect() for c in swarm[start:start + _CONNECT_WAVE])
                )
            begin = time.perf_counter()
            accepted = await asyncio.gather(
                *(c.submit_shares(shares_per_client, lanes=_LANES)
                  for c in swarm)
            )
            elapsed = time.perf_counter() - begin
        finally:
            for c in swarm:
                await c.close()
        total = sum(accepted)
        expected = clients * shares_per_client
        errors = sum(sum(c.stats.errors.values()) for c in swarm)
        if total != expected or errors or server.stats.invalid:
            raise RuntimeError(
                f"load run degraded: accepted {total}/{expected}, "
                f"client errors {errors}, server invalid "
                f"{server.stats.invalid}"
            )
        verifier = server.verifier.stats
        return {
            "clients": clients,
            "mode": "batched" if batched else "per-share",
            "shares": total,
            "seconds": round(elapsed, 4),
            "shares_per_s": round(total / elapsed, 1),
            "mean_batch": round(verifier.mean_batch, 2),
            "max_batch": verifier.max_batch,
            "errors": errors,
        }


def run_point(clients: int, shares_per_client: int, batched: bool) -> dict:
    """One measured load point (also used by the regression gate)."""
    return asyncio.run(
        _run_point_async(clients, shares_per_client, batched)
    )


def gate_point(repeats: int = 3) -> dict:
    """Best-of-``repeats`` run of the small committed gate point.

    Best-of damps shared-box scheduling noise the same way the hashrate
    bench does: the fastest run is the least-perturbed measurement.
    """
    rows = [
        run_point(GATE_CLIENTS, GATE_SHARES, batched=True)
        for _ in range(repeats)
    ]
    return max(rows, key=lambda row: row["shares_per_s"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shares", type=int, default=100,
                        help="shares per client at the 100-client points")
    parser.add_argument("--large-clients", type=int, default=1000,
                        help="client count for the concurrency point")
    parser.add_argument("--large-shares", type=int, default=20,
                        help="shares per client at the concurrency point")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("BENCH_pool.json"))
    args = parser.parse_args(argv)

    rows = []
    for clients, shares, batched in (
        (100, args.shares, True),
        (100, args.shares, False),
        (args.large_clients, args.large_shares, True),
    ):
        row = run_point(clients, shares, batched)
        rows.append(row)
        print(f"{row['clients']:5d} clients {row['mode']:>9}: "
              f"{row['shares_per_s']:10.1f} shares/s "
              f"(mean batch {row['mean_batch']:.1f}, "
              f"{row['shares']} shares in {row['seconds']:.2f}s)")

    batched_100 = next(r for r in rows if r["clients"] == 100
                       and r["mode"] == "batched")
    per_share_100 = next(r for r in rows if r["mode"] == "per-share")
    speedup = batched_100["shares_per_s"] / per_share_100["shares_per_s"]
    print(f"batched vs per-share at 100 clients: {speedup:.2f}x")

    gate = gate_point()
    print(f"gate point ({GATE_CLIENTS} clients x {GATE_SHARES} shares): "
          f"{gate['shares_per_s']:.1f} shares/s (best of 3)")

    artifact = {
        "pow": "sha256d",
        "share_difficulty": 1.0,
        "rows": rows,
        "batched_speedup_100": round(speedup, 2),
        "gate": gate,
    }
    args.output.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
