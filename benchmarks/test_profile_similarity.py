"""E14 (extension) — full-profile similarity: widgets vs target.

Figures 2/3 compare IPC and branch prediction; PerfProx's actual contract
is broader — the proxy should match the original across *all* the profile
dimensions.  This bench profiles a widget sample with the same profiler
used on the workloads and compares every dimension against the Leela
target: instruction mix, taken rate, dependency-distance histogram,
working set, L1 hit rate.
"""

from __future__ import annotations

import statistics

from repro.analysis.report import render_table
from repro.profiling.profiler import profile_program

from benchmarks.conftest import save_result


def _hist_l1(a, b) -> float:
    """L1 distance between two normalised histograms (0 = identical,
    2 = disjoint)."""
    return sum(abs(x - y) for x, y in zip(a, b))


def test_widget_profiles_match_target(benchmark, population, machine, profile):
    sample = population[:10]
    widget_profiles = []
    for widget, _ in sample:
        memory = machine.new_memory()
        for directive in widget.spec.plan.directives():
            directive.apply(memory)
        widget_profiles.append(
            profile_program(
                widget.program,
                machine,
                memory,
                name=widget.name,
                max_instructions=int(widget.spec.meta["fuse"]),
            )
        )

    def mean(metric):
        return statistics.mean(metric(p) for p in widget_profiles)

    rows = [
        ["IPC", profile.ipc, mean(lambda p: p.ipc)],
        ["branch accuracy", profile.branch_accuracy,
         mean(lambda p: p.branch_accuracy)],
        ["taken rate", profile.branch_taken_rate,
         mean(lambda p: p.branch_taken_rate)],
        ["int_alu share", profile.instruction_mix["int_alu"],
         mean(lambda p: p.instruction_mix["int_alu"])],
        ["load share", profile.instruction_mix["load"],
         mean(lambda p: p.instruction_mix["load"])],
        ["branch share", profile.instruction_mix["branch"],
         mean(lambda p: p.instruction_mix["branch"])],
        ["L1 hit rate", profile.l1_hit_rate, mean(lambda p: p.l1_hit_rate)],
        ["dep-hist L1 distance", 0.0,
         mean(lambda p: _hist_l1(p.dep_distance_hist, profile.dep_distance_hist))],
        ["working set (KB)", profile.working_set_bytes / 1024,
         mean(lambda p: p.working_set_bytes / 1024)],
    ]
    table = render_table(
        ["profile dimension", "Leela target", "widget mean"],
        rows,
        title="Full-profile similarity (PerfProx contract, beyond Figs. 2/3)",
    )
    save_result("profile_similarity", table)

    values = {row[0]: row for row in rows}
    assert abs(values["int_alu share"][2] - profile.instruction_mix["int_alu"]) < 0.1
    assert abs(values["taken rate"][2] - profile.branch_taken_rate) < 0.08
    assert abs(values["L1 hit rate"][2] - profile.l1_hit_rate) < 0.08
    assert values["dep-hist L1 distance"][2] < 0.8  # same general shape

    widget, _ = sample[0]
    memory = machine.new_memory()
    for directive in widget.spec.plan.directives():
        directive.apply(memory)
    benchmark.pedantic(
        lambda: profile_program(widget.program, machine, memory,
                                max_instructions=int(widget.spec.meta["fuse"])),
        rounds=2,
        iterations=1,
    )
