"""E2 — Figure 3: branch-prediction widget comparison.

Paper: the same 1000-widget population's branch behaviour, compared with
the Leela workload — the distribution sits near the reference workload's
branch-prediction accuracy, further solidifying the IPC result.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_histogram, gaussian_fit, summarize

from benchmarks.conftest import save_result


def test_fig3_branch_prediction_distribution(benchmark, population, profile):
    accuracies = [result.counters.branch_accuracy for _, result in population]
    taken = [result.counters.taken_rate for _, result in population]
    mean, std = gaussian_fit(accuracies)

    lines = [
        f"widgets: {len(accuracies)}  (paper: 1000)",
        f"reference (Leela) branch accuracy: {profile.branch_accuracy:.3f}, "
        f"taken rate: {profile.branch_taken_rate:.3f}",
        f"widget accuracy: mean={mean:.3f} std={std:.3f}  ({summarize(accuracies)})",
        f"widget taken rate: {summarize(taken)}",
        "",
        ascii_histogram(
            accuracies, bins=12, marker=profile.branch_accuracy, marker_label="Leela"
        ),
    ]
    save_result("fig3_branch", "\n".join(lines))
    from repro.analysis.svg import save_histogram

    from benchmarks.conftest import RESULTS_DIR

    save_histogram(
        RESULTS_DIR / "fig3_branch.svg",
        accuracies,
        bins=12,
        title="Figure 3 reproduction: branch-prediction widget comparison",
        x_label="widget branch-prediction accuracy",
        marker=profile.branch_accuracy,
        marker_label="Leela",
    )

    # Shape: widget branch behaviour clusters near the reference.
    assert abs(mean - profile.branch_accuracy) < 0.06
    assert abs(sum(taken) / len(taken) - profile.branch_taken_rate) < 0.08

    # Timed unit: extracting branch statistics from a stored population.
    def stats_pass():
        return gaussian_fit([r.counters.branch_accuracy for _, r in population])

    benchmark(stats_pass)


def test_fig3_mpki_comparable(benchmark, population, profile):
    """Secondary check: misprediction density (MPKI) in a plausible band
    around the reference workload's."""
    ref_mpki = 1000.0 * (1 - profile.branch_accuracy) * profile.instruction_mix["branch"]
    widget_mpki = [result.counters.branch_mpki for _, result in population]
    mean = sum(widget_mpki) / len(widget_mpki)
    assert 0.25 * ref_mpki < mean < 2.5 * ref_mpki
    benchmark(lambda: sum(r.counters.branch_mpki for _, r in population))
