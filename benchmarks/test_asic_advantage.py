"""E8 — ASIC advantage across PoW functions (§II, §III quantified).

The paper's economic argument: functions that exercise a subset of the
GPP invite ASICs that "strip away everything else"; HashCore exercises
everything, so the best ASIC ≈ the GPP itself.  The model's advantage
factors must reproduce that ordering:

    sha256d  >>  scrypt  >  equihash  >  randomx-like  >  hashcore ~ 1
"""

from __future__ import annotations

import statistics

from repro.analysis.report import render_table
from repro.asicmodel.advantage import AsicModel, PowTraits, utilization_from_counters
from repro.baselines.equihash_like import EquihashLike
from repro.baselines.randomx_like import RandomXLike
from repro.baselines.scrypt_like import ScryptLike
from repro.baselines.sha256d import Sha256d

from benchmarks.conftest import bench_seed, save_result


def _mean_utilization(results, config):
    totals: dict[str, float] = {}
    for counters in results:
        for key, value in utilization_from_counters(counters, config).items():
            totals[key] = totals.get(key, 0.0) + value
    return {k: v / len(results) for k, v in totals.items()}


def test_asic_advantage_ordering(benchmark, population, machine):
    model = AsicModel()

    hashcore_u = _mean_utilization(
        [result.counters for _, result in population], machine.config
    )
    advantages = {
        "sha256d": model.advantage(
            "sha256d", Sha256d.resource_profile(), PowTraits(fixed_function=True)
        ),
        "scrypt-like": model.advantage(
            "scrypt-like",
            ScryptLike(n=1024).resource_profile(),
            PowTraits(fixed_function=True),
        ),
        "equihash-like": model.advantage(
            "equihash-like",
            EquihashLike().resource_profile(),
            PowTraits(fixed_function=True),
        ),
    }
    rx = RandomXLike(program_size=128, loop_trips=32)
    rx_counters = [rx.run(bytes([i]) * 32)[1] for i in range(3)]
    advantages["randomx-like"] = model.advantage(
        "randomx-like",
        _mean_utilization(rx_counters, rx.machine.config),
        PowTraits(fixed_function=False),
    )
    advantages["hashcore (leela)"] = model.advantage(
        "hashcore (leela)",
        hashcore_u,
        PowTraits(fixed_function=False, requires_generation=True),
    )

    # HashCore over the full workload suite: widgets from every profile.
    # The paper evaluates the Leela profile only ("there is nothing unique
    # about this workload"); Leela barely uses FP/vector, so a leela-only
    # HashCore ASIC could strip those units.  Rotating profiles across the
    # SPEC-like suite forces the ASIC to provision for the *max* demand per
    # resource — the §IV-A goal of stressing every structure.
    from repro.profiling.profiler import profile_workload
    from repro.widgetgen.generator import WidgetGenerator
    from repro.widgetgen.params import GeneratorParams
    from repro.workloads.suite import SUITE, get_workload

    suite_params = GeneratorParams(target_instructions=20_000, snapshot_interval=500)
    suite_max: dict[str, float] = dict(hashcore_u)
    for name in SUITE:
        if name == "leela":
            continue
        wl_profile = profile_workload(get_workload(name), machine)
        wl_generator = WidgetGenerator(wl_profile, suite_params)
        counters = [
            wl_generator.widget(bench_seed(f"suite-{name}-{i}")).execute(machine).counters
            for i in range(3)
        ]
        for key, value in _mean_utilization(counters, machine.config).items():
            suite_max[key] = max(suite_max[key], value)
    advantages["hashcore (suite)"] = model.advantage(
        "hashcore (suite)",
        suite_max,
        PowTraits(fixed_function=False, requires_generation=True),
    )

    rows = [
        [name, adv.area_advantage, adv.energy_advantage, adv.asic_area]
        for name, adv in advantages.items()
    ]
    table = render_table(
        ["PoW function", "ASIC area advantage", "energy advantage", "ASIC area (GPP=129)"],
        rows,
        title="Best-ASIC advantage (lower = more GPP-friendly; paper argues "
        "HashCore -> ~1)",
    )
    note = (
        "note: leela-profile-only widgets leave FP/vector idle, so a "
        "leela-specific ASIC strips them; rotating widget profiles across "
        "the suite closes that gap (extension of the paper's single-profile "
        "evaluation)."
    )
    save_result("asic_advantage", table + "\n\n" + note)

    order = [
        "sha256d", "scrypt-like", "equihash-like", "randomx-like",
        "hashcore (suite)",
    ]
    factors = [advantages[name].area_advantage for name in order]
    assert factors == sorted(factors, reverse=True), factors
    assert advantages["sha256d"].area_advantage > 20
    assert advantages["hashcore (suite)"].area_advantage < 1.3
    assert advantages["hashcore (leela)"].area_advantage < 1.6

    benchmark(
        lambda: model.advantage(
            "hashcore",
            hashcore_u,
            PowTraits(fixed_function=False, requires_generation=True),
        )
    )


def test_profile_matching_widens_coverage_vs_uniform(benchmark, population, machine):
    """Ablation (§VI-C): HashCore's profile-matched widgets stress the
    branch predictor, which RandomX-style branch-free uniform programs
    leave idle — the resource-coverage difference between the two
    generation strategies."""
    hashcore_u = _mean_utilization(
        [result.counters for _, result in population], machine.config
    )
    rx = RandomXLike(program_size=128, loop_trips=32)
    rx_u = _mean_utilization(
        [rx.run(bytes([i]) * 32)[1] for i in range(3)], rx.machine.config
    )
    table = render_table(
        ["resource", "hashcore", "randomx-like"],
        [[k, hashcore_u[k], rx_u[k]] for k in sorted(hashcore_u)],
        title="Utilization coverage: inverted benchmarking vs uniform random code",
    )
    save_result("asic_coverage", table)

    assert hashcore_u["branch_predictor"] > 4 * rx_u["branch_predictor"]
    benchmark(lambda: statistics.mean(hashcore_u.values()))
