"""E7 — PoW end-to-end: mining, retargeting, block times (§I, §III).

Two parts:

* *real* mining: a short HashCore chain at tiny difficulty, every block
  fully validated (each attempt generates + runs a widget);
* *statistical* network: long-horizon difficulty dynamics and miner
  revenue shares under the Poisson mining model, exercising the actual
  retarget consensus rule.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.miner import mine_block
from repro.blockchain.network import simulate_network
from repro.core.hashcore import HashCore
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.widgetgen.params import GeneratorParams

from benchmarks.conftest import save_result


def test_hashcore_chain_real_mining(benchmark, profile):
    params = GeneratorParams(target_instructions=4000, snapshot_interval=250)
    hashcore = HashCore(profile=profile, params=params)
    bits = target_to_compact(difficulty_to_target(4.0))
    chain = Blockchain(hashcore, genesis_bits=bits,
                       schedule=RetargetSchedule(interval=1000))

    attempts_per_block = []
    for height in range(1, 4):
        block = Block.build(
            prev_hash=chain.tip_id,
            transactions=[f"coinbase-{height}".encode(), b"payment"],
            timestamp=30 * height,
            bits=chain.expected_bits(chain.tip_id),
        )
        mined = mine_block(block, hashcore, max_attempts=400)
        chain.add_block(mined.block)
        attempts_per_block.append(mined.attempts)

    table = render_table(
        ["height", "attempts (difficulty 4 => E[attempts]=4)"],
        [[i + 1, a] for i, a in enumerate(attempts_per_block)],
        title="Real HashCore mining (every attempt runs a widget)",
    )
    save_result("mining_real", table)
    assert chain.height() == 3

    def one_attempt():
        return hashcore.hash(chain.tip_id)

    benchmark.pedantic(one_attempt, rounds=3, iterations=1)


def test_network_difficulty_dynamics(benchmark):
    schedule = RetargetSchedule(block_time=30.0, interval=16)

    def hashrates(now, height):
        # Hashpower quadruples mid-run (new miners join, §III).
        return [60.0, 30.0, 10.0] if height <= 600 else [240.0, 120.0, 40.0]

    result = simulate_network(
        hashrates, 1200, schedule, initial_difficulty=3000.0, seed=42
    )
    early_diff = sum(result.difficulties[400:600]) / 200
    late_diff = sum(result.difficulties[-200:]) / 200
    steady_times = result.block_times[-200:]
    mean_time = sum(steady_times) / len(steady_times)
    shares = result.miner_shares(3)

    table = render_table(
        ["metric", "measured", "expected"],
        [
            ["steady block time (s)", mean_time, schedule.block_time],
            ["difficulty before hashrate jump", early_diff, 3000],
            ["difficulty after 4x hashrate", late_diff, 12000],
            ["miner shares", ", ".join(f"{s:.2f}" for s in shares), "0.60, 0.30, 0.10"],
        ],
        title="Statistical mining network (Poisson model + real retarget rule)",
    )
    save_result("mining_network", table)

    assert mean_time == pytest.approx(schedule.block_time, rel=0.25)
    assert late_diff / early_diff == pytest.approx(4.0, rel=0.4)
    assert shares[0] == pytest.approx(0.6, abs=0.06)

    benchmark(
        lambda: simulate_network([100.0], 200, schedule, initial_difficulty=3000.0)
    )

