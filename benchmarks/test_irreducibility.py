"""E12 (extension) — §IV-A irreducibility under a compiler attack.

An ASIC designer's cheapest attack on generated code is classical
optimization: build the CFG, run liveness, delete unobservable work.
This bench runs that attack on the widget population under two
observation models and on a strawman generator without HashCore's output
discipline:

* **snapshots** (HashCore's actual output): registers sampled at dynamic
  instruction counts → nothing is removable;
* **final state only** (weaker than HashCore): a few percent of
  overwritten-before-read stragglers die;
* **strawman** (same widgets, but only one register observed): large
  fractions die — what §IV-A's requirement prevents.
"""

from __future__ import annotations

import statistics

from repro.analysis.report import render_table
from repro.isa.dataflow import ALL_REGS, eliminate_dead_code

from benchmarks.conftest import save_result

_ONE_REG = frozenset({("r", 6)})


def test_dce_attack_on_widgets(benchmark, population):
    sample = [widget for widget, _ in population[:12]]

    snapshot_removed = [
        eliminate_dead_code(w.program, observe_everywhere=True).removed_fraction
        for w in sample
    ]
    final_removed = [
        eliminate_dead_code(w.program, live_out=frozenset(ALL_REGS)).removed_fraction
        for w in sample
    ]
    strawman_removed = [
        eliminate_dead_code(w.program, live_out=_ONE_REG).removed_fraction
        for w in sample
    ]

    rows = [
        ["snapshots (HashCore output)", statistics.mean(snapshot_removed),
         max(snapshot_removed)],
        ["final state only", statistics.mean(final_removed), max(final_removed)],
        ["single register observed", statistics.mean(strawman_removed),
         max(strawman_removed)],
    ]
    table = render_table(
        ["observation model", "mean removable", "max removable"],
        rows,
        title="Dead-code-elimination attack on widgets "
        "(fraction of instructions provably skippable)",
    )
    save_result("irreducibility", table)

    assert max(snapshot_removed) == 0.0
    assert statistics.mean(final_removed) < 0.12
    assert statistics.mean(strawman_removed) > 2 * statistics.mean(final_removed)

    widget = sample[0]
    benchmark(lambda: eliminate_dead_code(widget.program, live_out=frozenset(ALL_REGS)))
