"""E4 — §V: widget output sizes.

Paper: "These widgets produced outputs ranging in size from 20 kilobytes
to 38 kilobytes with a large amount of variation in register contents
during execution … a series of snapshots of the computer's register
contents captured every few thousand instructions."

At the default 60 k-instruction scale with a 500-instruction snapshot
cadence, the same proportions land outputs in the same band.
"""

from __future__ import annotations

from repro.analysis.stats import ascii_histogram, summarize

from benchmarks.conftest import save_result


def test_output_size_band(benchmark, population):
    sizes = [result.output_size for _, result in population]
    summary = summarize(sizes)
    kb = [s / 1024 for s in sizes]

    lines = [
        f"widgets: {len(sizes)}",
        f"output sizes: {min(kb):.1f} KB .. {max(kb):.1f} KB "
        f"(paper: 20 KB .. 38 KB)",
        f"spread ratio max/min: {max(sizes)/min(sizes):.2f} (paper: ~1.9)",
        str(summary),
        "",
        ascii_histogram(kb, bins=10),
    ]
    save_result("output_sizes", "\n".join(lines))

    assert 14_000 <= min(sizes)
    assert max(sizes) <= 48_000
    assert 1.2 < max(sizes) / min(sizes) < 2.6

    benchmark(lambda: summarize([r.output_size for _, r in population]))


def test_register_contents_vary(benchmark, population):
    """'a large amount of variation in register contents during execution':
    consecutive snapshots differ, and snapshots differ across widgets."""
    snap = 256  # bytes per snapshot
    for _, result in population[:10]:
        first = result.output[:snap]
        second = result.output[snap : 2 * snap]
        assert first != second
    firsts = {result.output[:snap] for _, result in population}
    assert len(firsts) == len(population)
    benchmark(lambda: len({r.output[:256] for _, r in population}))
