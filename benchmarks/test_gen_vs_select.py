"""E9 — §VI-A: widget generation vs widget selection.

The paper's trade-off discussion: runtime *generation* costs CPU per hash
but needs no storage; *selection* from a pre-built pool is nearly free per
hash but the pool "could consist of several gigabytes worth of code" and
risks per-widget ASICs.  This bench measures all three axes on real
widgets: storage per widget, generation+compile time, and the execution
share of a full hash evaluation.
"""

from __future__ import annotations

import time

from repro.analysis.report import render_table
from repro.core.hashcore import HashCore

from benchmarks.conftest import bench_seed, save_result


def test_generation_vs_selection_tradeoff(benchmark, generator, machine, profile, params):
    from repro.widgetgen.pool import SelectionHashCore, WidgetPool

    # --- storage axis: a real pool's encoded size -------------------------
    pool = WidgetPool(profile, params, pool_size=12)
    mean_code = pool.storage_bytes() / len(pool)
    pool_bytes_like_spec = mean_code * 430_000  # ~SPEC CPU 2017 line count

    # --- time axes: generation+compile vs pool-selection hashing ---------
    t0 = time.perf_counter()
    for i in range(8):
        generator.widget(bench_seed(f"time-{i}"))
    gen_time = (time.perf_counter() - t0) / 8

    hashcore = HashCore(profile=profile, params=params)
    t0 = time.perf_counter()
    trace = hashcore.hash_with_trace(b"gen-vs-select")
    total_time = time.perf_counter() - t0

    selector = SelectionHashCore(pool, machine=machine)
    t0 = time.perf_counter()
    selector.hash(b"gen-vs-select")
    select_total = time.perf_counter() - t0
    exec_time = select_total  # selection skips generation entirely

    rows = [
        ["storage per widget (bytes)", "0 (generated on demand)", f"{mean_code:.0f}"],
        ["pool for SPEC-sized corpus", "n/a", f"{pool_bytes_like_spec/1e6:.0f} MB"],
        ["generation+compile per hash", f"{gen_time*1e3:.1f} ms", "~0 (lookup)"],
        ["total per hash (measured)", f"{total_time*1e3:.1f} ms", f"{select_total*1e3:.1f} ms"],
        [
            "execution share of total",
            f"{100*(total_time-gen_time)/total_time:.0f}%",
            "~100% (paper: selection gives greater GPP utilization)",
        ],
        ["per-widget ASIC risk", "none (fresh code each hash)", "pool subset targetable"],
    ]
    table = render_table(
        ["axis", "generation (HashCore)", "selection (SelectionHashCore)"],
        rows,
        title="Generation vs selection (paper §VI-A) — both modes implemented",
    )
    save_result("gen_vs_select", table)

    # The paper's qualitative claims, quantified:
    assert gen_time < exec_time            # execution dominates even when generating
    assert pool_bytes_like_spec > 1e8      # a SPEC-scale pool is ~hundreds of MB
    assert trace.result.output             # the generated-mode hash really ran
    assert selector.verify(b"gen-vs-select", selector.hash(b"gen-vs-select"))

    benchmark.pedantic(
        lambda: generator.widget(bench_seed("bench-gen")), rounds=5, iterations=1
    )
