"""Extension experiment — market centralization by PoW function (§III).

Connects the E8 advantage factors to mining-market outcomes: a fixed-
capital attacker deploys the best available hardware for each PoW
function; the table shows the share of the network it captures and the
revenue Gini across all miners.  The paper's thesis in one table: the
smaller the ASIC advantage, the closer the market stays to
"equal hardware, equal opportunity".
"""

from __future__ import annotations

from repro.analysis.market import centralization_study
from repro.analysis.report import render_table
from repro.asicmodel.advantage import AsicModel, PowTraits, utilization_from_counters
from repro.baselines.scrypt_like import ScryptLike
from repro.baselines.sha256d import Sha256d

from benchmarks.conftest import save_result


def test_centralization_by_pow_function(benchmark, population, machine):
    model = AsicModel()

    totals: dict[str, float] = {}
    for _, result in population:
        for key, value in utilization_from_counters(
            result.counters, machine.config
        ).items():
            totals[key] = totals.get(key, 0.0) + value
    hashcore_u = {k: v / len(population) for k, v in totals.items()}

    advantages = {
        "sha256d": model.advantage(
            "sha256d", Sha256d.resource_profile(), PowTraits(True)
        ).area_advantage,
        "scrypt-like": model.advantage(
            "scrypt-like", ScryptLike(n=1024).resource_profile(), PowTraits(True)
        ).area_advantage,
        "hashcore": model.advantage(
            "hashcore", hashcore_u, PowTraits(False, requires_generation=True)
        ).area_advantage,
    }

    rows = []
    results = {}
    for name, advantage in advantages.items():
        study = centralization_study(
            max(1.0, advantage),
            n_home_miners=50,
            attacker_budget_rate=10.0,
            blocks=1500,
            seed=11,
        )
        results[name] = study
        rows.append([
            name,
            advantage,
            study.attacker_share_simulated,
            study.revenue_gini,
        ])

    table = render_table(
        ["PoW function", "ASIC advantage", "ASIC-owner block share",
         "revenue Gini"],
        rows,
        title="Fixed-capital attacker with best hardware, 50 home miners "
        "(capital alone would buy a 1/6 share)",
    )
    save_result("centralization", table)

    assert results["sha256d"].attacker_share_simulated > 0.85
    assert results["hashcore"].attacker_share_simulated < 0.30
    assert results["hashcore"].revenue_gini < results["sha256d"].revenue_gini

    benchmark(lambda: centralization_study(2.0, blocks=200, seed=1))
