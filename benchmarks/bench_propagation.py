"""Block-propagation benchmark: flood vs gossip vs compact relay.

Runs the same seeded chaos scenario family at several network sizes under
each relay protocol and records the measured propagation cost —
block-relay messages per block, modelled wire bytes per block, and the
tick at which the network converged — next to the closed-form prediction
from :func:`repro.blockchain.network.relay_traffic_model`.

Every run is a full :class:`~repro.blockchain.sim.ChaosRunner` simulation
(real consensus validation on every node), so the numbers are *measured*
protocol behaviour, not model output.  The scenarios are deterministic:
re-running this benchmark on unchanged code reproduces the committed
``BENCH_propagation.json`` exactly, which is what lets
``check_regression.py`` gate on it without timing noise.

Flood is O(n²) messages per block, so it is only run up to
``--flood-cap`` nodes (default 250); at 1000 nodes one flood block would
cost ~10⁶ messages and teach us nothing the 250-node point does not.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_propagation.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.blockchain.faults import LinkFaults, Scenario
from repro.blockchain.network import relay_traffic_model
from repro.blockchain.sim import ChaosRunner

#: Network sizes the benchmark sweeps.
DEFAULT_SIZES = (25, 100, 250, 1000)

#: Relay protocols compared at every size (flood subject to the cap).
RELAYS = ("flood", "gossip", "compact")

#: Largest network flood is run at by default.
DEFAULT_FLOOD_CAP = 250


def propagation_scenario(n_nodes: int, seed: int = 42) -> Scenario:
    """The benchmark's scenario family: light faults (1% drop, one tick
    of jitter), steady mining, and enough transaction load that compact
    relay has a mempool to reconstruct from.

    The 1000-node point mines fewer blocks over a shorter run — the
    per-block metrics are ratios, so fewer samples cost precision we do
    not need while saving minutes of wall clock.
    """
    big = n_nodes >= 1000
    return Scenario(
        seed=seed,
        n_nodes=n_nodes,
        ticks=200 if big else 240,
        mine_prob=0.08 if big else 0.15,
        mine_until=120 if big else 160,
        link=LinkFaults(delay=1, jitter=1, drop=0.01, duplicate=0.0),
        txs_per_block=2,
        tx_every=2,
        announce_every=8,
    )


def run_one(n_nodes: int, relay: str, seed: int) -> dict:
    """One measured (size, relay) point plus its analytic prediction."""
    scenario = propagation_scenario(n_nodes, seed).with_relay(relay)
    started = time.perf_counter()
    report = ChaosRunner(scenario).run()
    elapsed = time.perf_counter() - started
    model = relay_traffic_model(n_nodes, relay, scenario.fanout)
    return {
        "n_nodes": n_nodes,
        "relay": relay,
        "fanout": report.traffic["fanout"],
        "blocks_mined": report.blocks_mined,
        "messages_per_block": report.traffic["messages_per_block"],
        "bytes_per_block": report.traffic["bytes_per_block"],
        "by_category": report.traffic["by_category"],
        "converged": report.converged,
        "converged_tick": report.converged_tick,
        "violations": len(report.violations),
        "model_messages_per_block": model.messages_per_block,
        "model_hops": model.hops,
        "elapsed_s": round(elapsed, 2),
    }


def run_benchmark(sizes=DEFAULT_SIZES, flood_cap=DEFAULT_FLOOD_CAP,
                  seed: int = 42) -> dict:
    rows = []
    for n_nodes in sizes:
        for relay in RELAYS:
            if relay == "flood" and n_nodes > flood_cap:
                continue
            row = run_one(n_nodes, relay, seed)
            rows.append(row)
            print(f"  n={n_nodes:>4} {relay:>7}: "
                  f"{row['messages_per_block']:>9.1f} msg/blk  "
                  f"{row['bytes_per_block']:>11.1f} B/blk  "
                  f"converged@{row['converged_tick']}  "
                  f"[{row['elapsed_s']:.1f}s]")

    by_key = {(r["n_nodes"], r["relay"]): r for r in rows}
    summary = {}
    for n_nodes in sizes:
        flood = by_key.get((n_nodes, "flood"))
        gossip = by_key.get((n_nodes, "gossip"))
        compact = by_key.get((n_nodes, "compact"))
        if flood and gossip:
            summary[f"msg_reduction_gossip_n{n_nodes}"] = round(
                flood["messages_per_block"] / gossip["messages_per_block"], 2
            )
        if flood and compact:
            summary[f"byte_reduction_compact_n{n_nodes}"] = round(
                flood["bytes_per_block"] / compact["bytes_per_block"], 2
            )
    return {
        "benchmark": "block-propagation",
        "seed": seed,
        "flood_cap": flood_cap,
        "rows": rows,
        "summary": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_propagation.json"))
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--flood-cap", type=int, default=DEFAULT_FLOOD_CAP,
                        help="largest network flood relay is run at")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    print(f"propagation sweep: sizes {args.sizes}, flood cap "
          f"{args.flood_cap}, seed {args.seed}")
    result = run_benchmark(tuple(args.sizes), args.flood_cap, args.seed)
    args.out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for key, value in sorted(result["summary"].items()):
        print(f"  {key}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
