"""Durable chain-state benchmark: mempool ingest, block log, reorg cost.

Three measured sections, written to ``BENCH_store.json``:

* ``mempool`` — fee-market admission throughput.  Transactions are
  pre-signed off the clock (Lamport signing dominates otherwise and is a
  wallet cost, not a pool cost); the timed loop is pure ``Mempool.add``
  — duplicate/floor/RBF/nonce checks plus the base-nonce ledger
  validation — over chained spends from many senders.
* ``store`` — append-only block log throughput at the ~100k-transaction
  scale (default 500 blocks x 200 opaque transactions): sequential
  append rate, cold-reopen index scan, full consensus replay
  (``verify="tip"``), and the UTXO-index build over the replayed chain.
* ``reorg`` — cost of switching an 8-block fork at the chain tip via
  the undo window (rewind 4, apply 8) versus the same switch forced
  through a full ledger rebuild (undo window too shallow) — the number
  that justifies keeping undo records at all.

The ``gate`` section is the small mempool-ingest point
``check_regression.py`` re-measures (best-of-3, wall clock, 20%
tolerance like the other wall-clock gates).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_store.py
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / ".." / "src"))

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.ledger import Ledger
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import mine_block
from repro.blockchain.store import BlockStore, UtxoIndex
from repro.blockchain.transaction import Transaction
from repro.blockchain.lamport import Wallet
from repro.core.pow import difficulty_to_target, target_to_compact

POW = Sha256d()
BITS = target_to_compact(difficulty_to_target(2.0))
SCHEDULE = RetargetSchedule(interval=10_000)

#: Shape of the committed regression-gate point (senders x chained txs).
GATE_SENDERS = 40
GATE_DEPTH = 25


# ----------------------------------------------------------------------
# mempool ingest
# ----------------------------------------------------------------------
def mempool_ingest(senders: int, depth: int) -> dict:
    """Admission throughput over ``senders * depth`` pre-signed txs."""
    ledger = Ledger()
    wallets = []
    for i in range(senders):
        w = Wallet(hashlib.sha256(b"bench-store-%d" % i).digest())
        ledger.register(w.address, 10 * depth + depth)
        wallets.append(w)
    sink = wallets[0].address
    # Sign everything off the clock, interleaved round-robin by nonce so
    # admission always sees each sender's next expected nonce.
    txs = [
        Transaction.create(w, sink, 1, 1 + (nonce % 7), nonce)
        for nonce in range(depth)
        for w in wallets
    ]
    pool = Mempool(ledger, max_size=len(txs))
    start = time.perf_counter()
    for tx in txs:
        pool.add(tx)
    seconds = time.perf_counter() - start
    assert len(pool) == len(txs)
    return {
        "senders": senders,
        "depth": depth,
        "txs": len(txs),
        "seconds": round(seconds, 4),
        "ingest_tx_s": round(len(txs) / seconds, 1),
    }


def gate_point(repeats: int = 3) -> dict:
    """Best-of-``repeats`` run of the committed gate point (fastest run
    is the least-perturbed measurement on a shared box)."""
    rows = [mempool_ingest(GATE_SENDERS, GATE_DEPTH) for _ in range(repeats)]
    return max(rows, key=lambda row: row["ingest_tx_s"])


# ----------------------------------------------------------------------
# block log at scale
# ----------------------------------------------------------------------
def _opaque_txs(height: int, count: int) -> list[bytes]:
    """Coinbase plus ``count`` deterministic 40-byte opaque payloads."""
    txs = [b"cb-%d" % height]
    for i in range(count):
        txs.append((b"tx-%d-%d-" % (height, i)).ljust(40, b"\xaa"))
    return txs


def _mine_chain(blocks: int, txs_per_block: int) -> tuple[Blockchain, list[Block]]:
    chain = Blockchain(POW, SCHEDULE, genesis_bits=BITS)
    mined: list[Block] = []
    for height in range(1, blocks + 1):
        template = Block.build(
            prev_hash=chain.tip_id,
            transactions=_opaque_txs(height, txs_per_block),
            timestamp=100 + height,
            bits=chain.expected_bits(chain.tip_id),
        )
        block = mine_block(template, POW, max_attempts=500_000,
                           start_nonce=0).block
        chain.add_block(block)
        mined.append(block)
    return chain, mined


def store_scale(blocks: int, txs_per_block: int, workdir: pathlib.Path) -> dict:
    chain, mined = _mine_chain(blocks, txs_per_block)
    path = workdir / "bench_store.log"

    store = BlockStore(path, genesis_id=chain.genesis_id)
    start = time.perf_counter()
    for block in mined:
        store.append(block)
    append_s = time.perf_counter() - start
    store.close()
    size = path.stat().st_size

    cold = BlockStore(path)
    start = time.perf_counter()
    cold.reopen()
    reopen_s = time.perf_counter() - start
    assert len(cold) == blocks and cold.recovery["dropped_bytes"] == 0

    start = time.perf_counter()
    replayed = Blockchain(POW, SCHEDULE, genesis_bits=BITS, store=cold)
    replay_s = time.perf_counter() - start
    assert replayed.tip_id == chain.tip_id

    index = UtxoIndex()
    start = time.perf_counter()
    index.advance(replayed)
    index_s = time.perf_counter() - start
    assert index.height == blocks
    cold.close()

    total_txs = blocks * (txs_per_block + 1)
    return {
        "blocks": blocks,
        "txs_per_block": txs_per_block + 1,
        "total_txs": total_txs,
        "file_mb": round(size / 1e6, 2),
        "append_seconds": round(append_s, 4),
        "append_blocks_s": round(blocks / append_s, 1),
        "append_tx_s": round(total_txs / append_s, 1),
        "reopen_seconds": round(reopen_s, 4),
        "replay_seconds": round(replay_s, 4),
        "index_build_seconds": round(index_s, 4),
    }, chain


def reorg_cost(chain: Blockchain, fork_len: int = 8, fork_back: int = 4) -> dict:
    """Tip-switch cost through the undo window vs a forced full rebuild."""
    tip_height = chain.height()
    # Index snapshots at the pre-fork tip, one per strategy.
    windowed = UtxoIndex(max_undo=64)
    windowed.advance(chain)
    shallow = UtxoIndex(max_undo=2)  # window < fork depth -> rebuild
    shallow.advance(chain)

    parent = block_id(chain.main_chain()[tip_height - fork_back])
    for i in range(fork_len):
        height = tip_height - fork_back + 1 + i
        template = Block.build(
            prev_hash=parent,
            transactions=[b"fork-%d" % i],
            timestamp=1000 + height,
            bits=chain.expected_bits(parent),
        )
        block = mine_block(template, POW, max_attempts=500_000,
                           start_nonce=7).block
        chain.add_block(block)
        parent = block_id(block)
    assert chain.tip_id == parent  # the longer fork won

    start = time.perf_counter()
    moved = windowed.advance(chain)
    window_s = time.perf_counter() - start
    assert moved == {"applied": fork_len, "undone": fork_back,
                     "rebuilt": False}

    start = time.perf_counter()
    rebuilt = shallow.advance(chain)
    rebuild_s = time.perf_counter() - start
    assert rebuilt["rebuilt"] is True
    assert shallow.ledger.accounts == windowed.ledger.accounts

    return {
        "chain_height": chain.height(),
        "fork_len": fork_len,
        "fork_back": fork_back,
        "window_seconds": round(window_s, 5),
        "rebuild_seconds": round(rebuild_s, 5),
        "window_speedup": round(window_s and rebuild_s / window_s, 1),
    }


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=500,
                        help="chain length for the store-scale section")
    parser.add_argument("--txs-per-block", type=int, default=200,
                        help="opaque transactions per block (plus coinbase)")
    parser.add_argument("--senders", type=int, default=GATE_SENDERS,
                        help="mempool-ingest senders")
    parser.add_argument("--depth", type=int, default=GATE_DEPTH,
                        help="chained transactions per sender")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_store.json"))
    args = parser.parse_args(argv)

    print(f"mempool ingest ({args.senders} senders x {args.depth} txs)...")
    mempool = mempool_ingest(args.senders, args.depth)
    print(f"  {mempool['ingest_tx_s']:.1f} tx/s over {mempool['txs']} txs")

    with tempfile.TemporaryDirectory() as tmp:
        print(f"block log ({args.blocks} blocks x "
              f"{args.txs_per_block + 1} txs)...")
        store, chain = store_scale(
            args.blocks, args.txs_per_block, pathlib.Path(tmp)
        )
        print(f"  append {store['append_tx_s']:.0f} tx/s  "
              f"reopen {store['reopen_seconds']:.3f}s  "
              f"replay {store['replay_seconds']:.3f}s  "
              f"({store['file_mb']} MB)")
        reorg = reorg_cost(chain)
        print(f"  reorg: window {reorg['window_seconds']*1e3:.2f} ms vs "
              f"rebuild {reorg['rebuild_seconds']*1e3:.2f} ms "
              f"({reorg['window_speedup']}x)")

    print("gate point (best of 3)...")
    gate = gate_point()
    print(f"  {gate['ingest_tx_s']:.1f} tx/s")

    payload = {
        "mempool": mempool,
        "store": store,
        "reorg": reorg,
        "gate": gate,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
