"""Shared benchmark fixtures.

The experiment benches reproduce the paper's tables and figures.  Scale is
controlled by environment variables so that a laptop run finishes in
minutes while preserving distribution shape:

* ``HASHCORE_BENCH_WIDGETS`` — widget population size (default 60; the
  paper uses 1000 native-speed widgets),
* ``HASHCORE_BENCH_INSTR`` — target dynamic instructions per widget
  (default 60000; paper-scale widgets run millions).

Each experiment writes its rendered table to ``benchmarks/results/<id>.txt``
(and prints it, visible with ``pytest -s``); EXPERIMENTS.md records the
paper-vs-measured comparison from these outputs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.default_profile import default_profile
from repro.core.seed import HashSeed
from repro.machine.cpu import Machine
from repro.widgetgen.generator import WidgetGenerator
from repro.widgetgen.params import GeneratorParams

import hashlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_WIDGETS = int(os.environ.get("HASHCORE_BENCH_WIDGETS", "60"))
TARGET_INSTRUCTIONS = int(os.environ.get("HASHCORE_BENCH_INSTR", "60000"))


def bench_seed(tag) -> HashSeed:
    """Deterministic seed for benchmark populations."""
    return HashSeed(hashlib.sha256(f"bench-{tag}".encode()).digest())


def save_result(name: str, text: str) -> None:
    """Persist one experiment's rendered output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@pytest.fixture(scope="session")
def machine() -> Machine:
    return Machine()


@pytest.fixture(scope="session")
def profile():
    return default_profile()


@pytest.fixture(scope="session")
def params() -> GeneratorParams:
    return GeneratorParams(target_instructions=TARGET_INSTRUCTIONS)


@pytest.fixture(scope="session")
def generator(profile, params) -> WidgetGenerator:
    return WidgetGenerator(profile, params)


@pytest.fixture(scope="session")
def population(generator, machine):
    """The shared executed widget population: [(widget, result), ...]."""
    out = []
    for i in range(N_WIDGETS):
        widget = generator.widget(bench_seed(i))
        out.append((widget, widget.execute(machine)))
    return out
