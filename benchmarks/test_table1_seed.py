"""E3 — Table I: hash-seed usage.

Paper: the 256-bit seed splits into eight 32-bit fields driving Integer
ALU, Integer Multiply, FP ALU, Loads, Stores, Branch Behavior, the BBV
seed, and the Memory seed.  This bench validates the mapping end-to-end:
sweeping each field (all else fixed) moves exactly its designated knob of
the *generated* widget, measured from the compiled spec.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.seed import HashSeed, SeedField
from repro.widgetgen.codegen import compile_spec
from repro.widgetgen.generator import generate_spec

from benchmarks.conftest import save_result

_NOISE_FIELDS = [
    (SeedField.INT_ALU, "int_alu"),
    (SeedField.INT_MUL, "int_mul"),
    (SeedField.FP_ALU, "fp_alu"),
    (SeedField.LOADS, "load"),
    (SeedField.STORES, "store"),
]


def test_table1_field_sweep(benchmark, profile, params):
    base = HashSeed.from_fields([0x55AA55AA] * 8)
    base_mix = generate_spec(profile, base, params).meta["target_mix"]

    rows = []
    for field, key in _NOISE_FIELDS:
        lo = generate_spec(profile, base.with_field(field, 0), params)
        hi = generate_spec(profile, base.with_field(field, 2**32 - 1), params)
        rows.append(
            [
                f"bits {4*field*8}-{4*field*8+31}",
                field.name,
                lo.meta["target_mix"][key],
                hi.meta["target_mix"][key],
                "+" if hi.meta["target_mix"][key] >= lo.meta["target_mix"][key] else "-",
            ]
        )
        assert hi.meta["target_mix"][key] >= lo.meta["target_mix"][key], field

    # Field 5: branch behaviour (taken-rate target + mid threshold).
    lo5 = generate_spec(profile, base.with_field(SeedField.BRANCH_BEHAVIOR, 0), params)
    hi5 = generate_spec(
        profile, base.with_field(SeedField.BRANCH_BEHAVIOR, 2**32 - 1), params
    )
    rows.append(
        ["bits 160-191", "BRANCH_BEHAVIOR", lo5.meta["target_taken_rate"],
         hi5.meta["target_taken_rate"], "jitter"]
    )
    assert lo5.meta["target_taken_rate"] != hi5.meta["target_taken_rate"]

    # Fields 6/7: PRNG seeds — structure and memory change, resp.
    bbv_a = generate_spec(profile, base.with_field(SeedField.BBV_SEED, 1), params)
    bbv_b = generate_spec(profile, base.with_field(SeedField.BBV_SEED, 2), params)
    assert compile_spec(bbv_a).fingerprint() != compile_spec(bbv_b).fingerprint()
    assert bbv_a.plan == bbv_b.plan
    rows.append(["bits 192-223", "BBV_SEED", "structure PRNG", "", "reseeds"])

    mem_a = generate_spec(profile, base.with_field(SeedField.MEMORY_SEED, 1), params)
    mem_b = generate_spec(profile, base.with_field(SeedField.MEMORY_SEED, 2), params)
    assert mem_a.plan.fill_seed != mem_b.plan.fill_seed
    rows.append(["bits 224-255", "MEMORY_SEED", "memory PRNG", "", "reseeds"])

    table = render_table(
        ["hash bits", "usage (Table I)", "target @field=0", "@field=max", "effect"],
        rows,
        title=f"Table I reproduction (base mix branch={base_mix['branch']:.3f})",
    )
    save_result("table1_seed", table)

    benchmark.pedantic(
        lambda: generate_spec(profile, base, params), rounds=5, iterations=1
    )
