"""Ablation benches for the design choices DESIGN.md calls out.

* branch-predictor choice (gshare vs bimodal vs static) — how much the
  widgets' calibrated branch behaviour depends on the reference predictor;
* cache-size sensitivity — widget IPC under a halved L1;
* snapshot interval — output size and irreducibility granularity vs cost;
* seed-noise magnitude — how widget variance scales with the Table I noise
  fraction.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.analysis.report import render_table
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.cpu import Machine
from repro.widgetgen.generator import WidgetGenerator
from repro.widgetgen.params import GeneratorParams

from benchmarks.conftest import bench_seed, save_result


def test_predictor_ablation(benchmark, population, profile):
    sample = [widget for widget, _ in population[:8]]
    rows = []
    for predictor, bits, history in (
        ("gshare", 12, 12),
        ("bimodal", 12, 0),
        ("always-taken", 1, 0),
    ):
        config = dataclasses.replace(
            MachineConfig(),
            predictor=predictor,
            predictor_table_bits=bits,
            predictor_history_bits=history,
        )
        machine = Machine(config)
        accs = []
        ipcs = []
        for widget in sample:
            counters = widget.execute(machine).counters
            accs.append(counters.branch_accuracy)
            ipcs.append(counters.ipc)
        rows.append([predictor, statistics.mean(accs), statistics.mean(ipcs)])
    table = render_table(
        ["predictor", "widget branch accuracy", "widget IPC"],
        rows,
        title="Predictor ablation (reference profile measured under gshare)",
    )
    save_result("ablation_predictor", table)

    accuracies = {row[0]: row[1] for row in rows}
    assert accuracies["gshare"] > accuracies["always-taken"]
    assert accuracies["bimodal"] > accuracies["always-taken"]

    machine = Machine()
    benchmark.pedantic(lambda: sample[0].execute(machine), rounds=3, iterations=1)


def test_cache_sensitivity(benchmark, population):
    """Quarter-sized L1 (8 KB < the 16 KB hot region): widget IPC must
    drop, showing the widgets genuinely live in the cache hierarchy rather
    than in registers."""
    sample = [widget for widget, _ in population[:8]]
    small_l1 = dataclasses.replace(
        MachineConfig(), l1=CacheConfig(8 * 1024, 8, 64, 4)
    )
    base = Machine()
    shrunk = Machine(small_l1)
    base_ipc = statistics.mean(w.execute(base).counters.ipc for w in sample)
    small_ipc = statistics.mean(w.execute(shrunk).counters.ipc for w in sample)
    save_result(
        "ablation_cache",
        f"widget IPC: L1=32KB {base_ipc:.3f}  L1=8KB {small_ipc:.3f}  "
        f"(delta {100*(small_ipc/base_ipc-1):+.1f}%)",
    )
    # Dependent-address loads dominate the chain, so the effect is real
    # but modest (L1->L2 latency only enters chains through those loads).
    assert small_ipc < 0.998 * base_ipc
    benchmark.pedantic(lambda: sample[0].execute(shrunk), rounds=3, iterations=1)


def test_snapshot_interval_ablation(benchmark, profile):
    """Snapshot cadence trades output size against commit granularity;
    execution cost stays nearly flat (snapshots are cheap)."""
    rows = []
    machine = Machine()
    for interval in (250, 500, 2000):
        params = GeneratorParams(
            target_instructions=30_000, snapshot_interval=interval
        )
        generator = WidgetGenerator(profile, params)
        widget = generator.widget(bench_seed(f"snap-{interval}"))
        result = widget.execute(machine)
        rows.append([interval, result.snapshots, result.output_size])
    table = render_table(
        ["snapshot interval", "snapshots", "output bytes"],
        rows,
        title="Snapshot cadence ablation (30k-instruction widgets)",
    )
    save_result("ablation_snapshots", table)
    assert rows[0][2] > rows[-1][2]  # denser snapshots, bigger output

    benchmark(lambda: rows)


def test_noise_fraction_ablation(benchmark, profile, machine):
    """More Table I noise -> more mix variance across seeds (the code
    randomization knob, §IV-A)."""
    rows = []
    for noise in (0.0, 0.1, 0.4):
        params = GeneratorParams(
            target_instructions=20_000, snapshot_interval=500, noise_fraction=noise
        )
        generator = WidgetGenerator(profile, params)
        int_shares = []
        for i in range(8):
            counters = generator.widget(bench_seed(f"noise-{noise}-{i}")).execute(machine).counters
            int_shares.append(counters.mix_fractions()["int_alu"])
        rows.append([noise, statistics.mean(int_shares), statistics.stdev(int_shares)])
    table = render_table(
        ["noise fraction", "mean int_alu share", "std across seeds"],
        rows,
        title="Seed-noise magnitude ablation",
    )
    save_result("ablation_noise", table)
    benchmark(lambda: rows)


def test_prefetcher_ablation(benchmark, population, machine):
    """Next-line prefetching: helps streaming FP code, leaves the
    widgets' irregular accesses (and their hashes) unchanged."""
    pf_machine = Machine(
        dataclasses.replace(MachineConfig(), prefetch_next_line=True)
    )
    from repro.workloads import get_workload

    matrix = get_workload("matrix").build()
    base_matrix = matrix.run(machine).counters
    pf_matrix = matrix.run(pf_machine).counters

    sample = [widget for widget, _ in population[:6]]
    base_widget = statistics.mean(w.execute(machine).counters.ipc for w in sample)
    pf_widget = statistics.mean(w.execute(pf_machine).counters.ipc for w in sample)

    save_result(
        "ablation_prefetch",
        render_table(
            ["code", "IPC no prefetch", "IPC next-line prefetch"],
            [["matrix (streaming)", base_matrix.ipc, pf_matrix.ipc],
             ["widgets (irregular)", base_widget, pf_widget]],
            title="Next-line prefetcher ablation",
        ),
    )
    assert pf_matrix.ipc > base_matrix.ipc            # streams benefit
    assert pf_matrix.dram_accesses < base_matrix.dram_accesses
    # Hashes unaffected: prefetch is timing-only.
    sample_result = sample[0].execute(pf_machine)
    reference = sample[0].execute(machine)
    assert sample_result.output == reference.output

    benchmark.pedantic(lambda: matrix.run(pf_machine), rounds=1, iterations=1)
