"""E6 — Theorem 1 and hash-gate properties.

The collision-resistance proof is machine-checked in the unit suite
(tests/test_reduction.py); this bench measures the statistical hash
quality of the composed H — avalanche effect and output bit balance —
plus the cost of one evaluation (generation + compilation + execution +
two gates), the figure that sets the network hash rate.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.hashcore import HashCore

from benchmarks.conftest import save_result


def _hamming(a: bytes, b: bytes) -> int:
    return bin(int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).count("1")


def test_avalanche_and_balance(benchmark, profile, params):
    hashcore = HashCore(profile=profile, params=params)

    # Avalanche: flip one input bit, expect ~128 of 256 output bits to flip.
    distances = []
    for i in range(12):
        base = f"avalanche-{i}".encode()
        flipped = bytearray(base)
        flipped[0] ^= 1 << (i % 8)
        distances.append(_hamming(hashcore.hash(base), hashcore.hash(bytes(flipped))))
    mean_distance = sum(distances) / len(distances)

    # Bit balance over a digest population.
    digests = [hashcore.hash(f"balance-{i}".encode()) for i in range(16)]
    ones = sum(bin(int.from_bytes(d, "big")).count("1") for d in digests)
    balance = ones / (256 * len(digests))

    table = render_table(
        ["metric", "measured", "ideal"],
        [
            ["avalanche (bits flipped of 256)", mean_distance, 128],
            ["min avalanche", min(distances), ">= ~96"],
            ["output bit balance", balance, 0.5],
        ],
        title="Hash quality of H(x) = G(s || W(s))",
    )
    save_result("hash_quality", table)

    assert 100 <= mean_distance <= 156
    assert min(distances) >= 90
    assert 0.45 < balance < 0.55

    # Timed unit: one full H evaluation (the miner's cost per attempt).
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: hashcore.hash(f"timing-{next(counter)}".encode()),
        rounds=3,
        iterations=1,
    )


def test_verification_equals_recomputation(benchmark, profile, params):
    hashcore = HashCore(profile=profile, params=params)
    digest = hashcore.hash(b"verify-me")
    assert hashcore.verify(b"verify-me", digest)
    assert not hashcore.verify(b"verify-me!", digest)
    benchmark.pedantic(lambda: hashcore.verify(b"verify-me", digest), rounds=2, iterations=1)
