"""E10 — §VI-B: targeting alternative GPPs.

"There is no reason that the HashCore framework could not be leveraged on
a variety of other chip architectures, such as ARM cores" — the framework
is modular in the machine.  This bench runs the same widget population on
the ARM-like and scalar-in-order configs:

* hashes are identical everywhere (architectural output), so the chips
  form one mining network;
* hash *rates* differ with microarchitectural capability, which is the
  economically relevant axis.
"""

from __future__ import annotations

import statistics

from repro.analysis.report import render_table
from repro.machine.config import mobile_arm, scalar_inorder
from repro.machine.cpu import Machine

from benchmarks.conftest import bench_seed, save_result


def test_alternative_gpp_targets(benchmark, population, generator, machine, profile):
    arm = Machine(mobile_arm())
    scalar = Machine(scalar_inorder())
    sample = population[:10]

    rows = []
    speedups = {}
    for name, target in (("ivy-bridge", machine), ("mobile-arm", arm),
                         ("scalar-inorder", scalar)):
        cycles = []
        for widget, reference_result in sample:
            result = widget.execute(target)
            assert result.output == reference_result.output  # same hash everywhere
            cycles.append(result.counters.cycles)
        mean_cycles = statistics.mean(cycles)
        speedups[name] = mean_cycles
        rows.append([name, mean_cycles,
                     statistics.mean(
                         r.counters.retired for _, r in sample
                     ) / mean_cycles])

    base = speedups["ivy-bridge"]
    table = render_table(
        ["machine", "mean cycles/widget", "IPC"],
        rows,
        title="Same widgets, alternative GPPs (outputs bit-identical; only "
        "speed differs)",
    )
    save_result(
        "alt_gpp",
        table
        + f"\n\nrelative hashrate: ivy-bridge 1.00, mobile-arm "
        f"{base/speedups['mobile-arm']:.2f}, scalar-inorder "
        f"{base/speedups['scalar-inorder']:.2f}",
    )

    # The big OoO core must win, the scalar core must lose badly — the
    # per-chip capability ordering a real mining market would price.
    assert speedups["ivy-bridge"] < speedups["mobile-arm"] < speedups["scalar-inorder"]

    widget = generator.widget(bench_seed("alt-gpp"))
    benchmark.pedantic(lambda: widget.execute(arm), rounds=3, iterations=1)


def test_arm_native_profile_generation(benchmark, profile):
    """Full §VI-B modularity: profile a workload *on the ARM machine* and
    generate widgets against that profile — 'only a new widget generator
    script' is needed, here not even that."""
    from repro.profiling.profiler import profile_workload
    from repro.widgetgen.generator import WidgetGenerator
    from repro.widgetgen.params import GeneratorParams
    from repro.workloads.leela import LeelaWorkload

    arm = Machine(mobile_arm())
    arm_profile = profile_workload(LeelaWorkload(), arm)
    params = GeneratorParams(target_instructions=20_000, snapshot_interval=500)
    generator = WidgetGenerator(arm_profile, params)
    widget = generator.widget(bench_seed("arm-native"))
    result = widget.execute(arm)
    assert result.counters.retired > 5_000
    # The ARM profile differs from the x86 one (different caches/predictor),
    # so the generated widgets differ too.
    assert arm_profile.ipc != profile.ipc

    benchmark.pedantic(lambda: generator.spec(bench_seed("arm-2")), rounds=5, iterations=1)
