"""Microbenchmarks: per-component costs.

Not a paper artifact; these time the substrate pieces so regressions in
the simulator or generator are visible independently of the experiment
benches, and they record the hash rates of every PoW function on this
host (the denominators of any mining-economics discussion).
"""

from __future__ import annotations

import hashlib

from repro.baselines.equihash_like import EquihashLike
from repro.baselines.randomx_like import RandomXLike
from repro.baselines.scrypt_like import ScryptLike
from repro.baselines.sha256d import Sha256d
from repro.isa.builder import ProgramBuilder
from repro.machine.cpu import Machine
from repro.widgetgen.codegen import compile_spec

from benchmarks.conftest import bench_seed


def test_interpreter_throughput(benchmark, machine):
    """Simulated instructions per second on a dense integer loop."""
    b = ProgramBuilder("throughput")
    with b.loop(1, 10_000):
        b.addi(2, 2, 1)
        b.xor(3, 3, 2)
        b.mul(4, 2, 3)
        b.load(5, 2, 0)
        b.add(6, 6, 5)
    program = b.build()
    result = benchmark(lambda: machine.run(program))
    assert result.counters.retired > 60_000


def test_widget_generation_only(benchmark, generator):
    """Spec generation (no compile, no execute)."""
    counter = iter(range(10**9))
    benchmark(lambda: generator.spec(bench_seed(f"gen-{next(counter)}")))


def test_widget_compile_only(benchmark, generator):
    spec = generator.spec(bench_seed("compile"))
    benchmark(lambda: compile_spec(spec))


def test_widget_execute_only(benchmark, generator, machine):
    widget = generator.widget(bench_seed("exec"))
    benchmark.pedantic(lambda: widget.execute(machine), rounds=3, iterations=1)


def test_sha256d_rate(benchmark):
    fn = Sha256d()
    benchmark(lambda: fn.hash(b"header" * 8))


def test_scrypt_like_rate(benchmark):
    fn = ScryptLike(n=256)
    benchmark.pedantic(lambda: fn.hash(b"header" * 8), rounds=3, iterations=1)


def test_equihash_like_rate(benchmark):
    fn = EquihashLike(n=48, k=3)
    benchmark.pedantic(lambda: fn.hash(b"header" * 8), rounds=2, iterations=1)


def test_randomx_like_rate(benchmark):
    fn = RandomXLike(program_size=128, loop_trips=32)
    benchmark.pedantic(lambda: fn.hash(b"header" * 8), rounds=3, iterations=1)


def test_memory_fill_rate(benchmark, machine):
    memory = machine.new_memory()
    benchmark(lambda: memory.fill_random(1, 0, 1 << 16))


def test_hash_gate_rate(benchmark):
    data = hashlib.sha256(b"x").digest() * 1000  # 32 KB — a widget output
    from repro.core.hash_gate import hash_gate

    benchmark(lambda: hash_gate(data))


def test_full_scale_widget(benchmark, profile, machine):
    """One paper-scale widget (4M dynamic instructions): demonstrates that
    GeneratorParams.full_scale() works end-to-end; the multi-second runtime
    is the interpreter tax the scaled defaults avoid."""
    from repro.widgetgen.generator import WidgetGenerator
    from repro.widgetgen.params import GeneratorParams

    generator = WidgetGenerator(profile, GeneratorParams.full_scale())
    widget = generator.widget(bench_seed("full-scale"))

    def run_once():
        result = widget.execute(machine)
        assert 1_000_000 < result.counters.retired < 10_000_000
        assert result.output_size > 10_000
        return result

    benchmark.pedantic(run_once, rounds=1, iterations=1)
