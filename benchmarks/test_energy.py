"""Extension experiment — on-GPP energy profiles (§II's energy argument).

Ren & Devadas [10] (cited by the paper) argue that memory-hard PoW loses
its ASIC resistance on the *energy* axis.  This bench measures on-GPP
energy composition for the workload suite and for the two random-code PoW
functions, showing the lever the argument pulls on: memory-bound code
spends its joules on DRAM + waiting, compute-rich code on execution units
— and only the latter keeps an ASIC's energy advantage small.
"""

from __future__ import annotations

import statistics

from repro.analysis.report import render_table
from repro.baselines.randomx_like import RandomXLike
from repro.machine.energy import EnergyModel
from repro.workloads import SUITE, get_workload

from benchmarks.conftest import save_result


def test_energy_composition(benchmark, machine, population):
    model = EnergyModel()
    rows = []
    for name in sorted(SUITE):
        result = get_workload(name).build().run(machine)
        breakdown = model.energy_of(result.counters)
        rows.append([
            name,
            breakdown.per_instruction(result.counters.retired),
            breakdown.compute / breakdown.total,
            breakdown.memory_share(),
            breakdown.static / breakdown.total,
        ])

    widget_breakdowns = [
        model.energy_of(result.counters) for _, result in population[:12]
    ]
    rows.append([
        "hashcore-widgets",
        statistics.mean(
            b.per_instruction(r.counters.retired)
            for b, (_, r) in zip(widget_breakdowns, population[:12])
        ),
        statistics.mean(b.compute / b.total for b in widget_breakdowns),
        statistics.mean(b.memory_share() for b in widget_breakdowns),
        statistics.mean(b.static / b.total for b in widget_breakdowns),
    ])

    rx = RandomXLike(program_size=128, loop_trips=32)
    _, rx_counters = rx.run(b"\x05" * 32)
    rx_breakdown = model.energy_of(rx_counters)
    rows.append([
        "randomx-like",
        rx_breakdown.per_instruction(rx_counters.retired),
        rx_breakdown.compute / rx_breakdown.total,
        rx_breakdown.memory_share(),
        rx_breakdown.static / rx_breakdown.total,
    ])

    table = render_table(
        ["workload / PoW", "energy/instr", "compute share", "memory share",
         "static share"],
        rows,
        title="On-GPP energy composition (relative pJ; §II energy argument)",
    )
    save_result("energy", table)

    by_name = {row[0]: row for row in rows}
    # The bandwidth-bound workload burns the least share on compute...
    assert by_name["graph"][2] < by_name["leela"][2]
    # ...and costs the most energy per instruction.
    assert by_name["graph"][1] > 2 * by_name["leela"][1]

    counters = population[0][1].counters
    benchmark(lambda: model.energy_of(counters))
