"""E5 — §V-B: positive-only mix noise.

Paper: "HashCore only adds positive noise to the instruction type counts.
This increase in instructions leads to proportionally less branch
instructions" — the measured widget mix must sit at-or-above the profile
on the noised compute classes and at-or-below on branches.
"""

from __future__ import annotations

import statistics

from repro.analysis.report import render_table

from benchmarks.conftest import save_result

_NOISED_KEYS = ("int_alu", "int_mul", "fp_alu", "load", "store")


def test_mix_noise_direction(benchmark, population, profile):
    mean_mix = {}
    for key in list(_NOISED_KEYS) + ["branch", "vector"]:
        mean_mix[key] = statistics.mean(
            result.counters.mix_fractions()[key] for _, result in population
        )

    rows = []
    for key in list(_NOISED_KEYS) + ["branch"]:
        ref = profile.instruction_mix[key]
        measured = mean_mix[key]
        rows.append([key, ref, measured, f"{100*(measured/ref-1):+.1f}%" if ref else "n/a"])
    table = render_table(
        ["class", "Leela profile", "widget mean", "shift"],
        rows,
        title="Instruction-mix noise (positive on compute classes, "
        "negative on branch share)",
    )
    save_result("mix_noise", table)

    # Branch share strictly below the profile's (the paper's observation).
    assert mean_mix["branch"] < profile.instruction_mix["branch"]
    # Compute classes within a sensible band of the (noised) profile.
    for key in ("int_alu", "load", "store"):
        assert abs(mean_mix[key] - profile.instruction_mix[key]) < 0.12, key

    benchmark(
        lambda: statistics.mean(
            r.counters.mix_fractions()["branch"] for _, r in population
        )
    )


def test_noise_is_seed_dependent(benchmark, population):
    """Different seeds produce different mixes (the randomization that
    defeats fixed-code ASICs, §IV-A)."""
    mixes = {
        tuple(round(v, 3) for v in result.counters.mix_fractions().values())
        for _, result in population
    }
    assert len(mixes) > len(population) * 0.8
    benchmark(lambda: len(mixes))
