"""E-chaos — 50-seed fault-injection soak over fuzzed schedules.

Each seed deterministically fuzzes a full fault schedule (lossy/jittery
links, partitions, crash/restart, byzantine forgery) via
:func:`~repro.blockchain.faults.random_scenario` and runs it through the
invariant-checked :class:`~repro.blockchain.sim.ChaosRunner`.  A failing
seed is a complete, replayable bug report: ``repro chaos`` with the same
schedule reproduces it byte-for-byte.

The tier-1 suite runs a 5-seed smoke (``tests/test_chaos.py``); this soak
widens it to 50 seeds and asserts a wall-clock budget so the harness
itself stays cheap enough to fuzz.
"""

from __future__ import annotations

import time

import pytest

from repro.blockchain.faults import random_scenario
from repro.blockchain.sim import ChaosRunner

from benchmarks.conftest import save_result

N_SEEDS = 50
#: Generous ceiling — the 50-seed soak measures well under 5 s on a
#: laptop; tripping this means the harness got ~20x slower.
BUDGET_SECONDS = 90.0


@pytest.mark.chaos
def test_fifty_seed_soak_holds_invariants():
    started = time.perf_counter()
    failures = []
    mined = faults = 0
    for seed in range(N_SEEDS):
        report = ChaosRunner(random_scenario(seed)).run()
        mined += report.blocks_mined
        scenario = report.scenario
        faults += (len(scenario["partitions"]) + len(scenario["crashes"])
                   + len(scenario["byzantine"]))
        if not report.ok():
            failures.append((seed, report.violations,
                             report.converged))
    elapsed = time.perf_counter() - started
    lines = [
        f"seeds              : {N_SEEDS}",
        f"blocks mined       : {mined}",
        f"scheduled faults   : {faults}",
        f"failing seeds      : {[f[0] for f in failures]}",
        f"wall clock         : {elapsed:.1f} s (budget {BUDGET_SECONDS:.0f} s)",
    ]
    save_result("chaos_soak", "\n".join(lines))
    assert not failures, failures
    assert faults > 0  # the fuzzer actually scheduled faults
    assert elapsed < BUDGET_SECONDS, (
        f"soak took {elapsed:.1f}s, budget {BUDGET_SECONDS}s"
    )
