"""Hash-rate regression gate.

Re-measures the cached-widget hash rate of the accelerated execution tiers
(``fast`` and ``jit``) and compares each against the committed
``BENCH_hashrate.json``.  Exits non-zero when either tier has lost more
than ``--threshold`` (default 20%) of its committed rate — the cheap guard
against silently pessimising the hot paths.

Only the cached-widget regime is gated: it isolates execution speed from
widget generation/compilation (which every tier pays identically), so it
is the number a code change can actually regress.  The tolerance is wide
because these are wall-clock rates on a shared box; catching a 2× cliff
matters, chasing ±10% noise does not.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_regression.py

Not a pytest module — it is invoked directly by the verification recipe
(see ``.claude/skills/verify/SKILL.md``) and by hand before committing a
refreshed ``BENCH_hashrate.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_hashrate import _best_rate, _params  # noqa: E402

from repro.core.hashcore import HashCore  # noqa: E402
from repro.machine.config import PRESETS, preset  # noqa: E402

#: Tiers the gate protects (the timed path is the reference model, not a
#: perf artifact, so it is deliberately not gated).
_GATED_MODES = ("fast", "jit")


def measure_cached(machine_name: str, instructions: int, hashes: int,
                   repeats: int) -> dict[str, float]:
    """Fresh cached-widget hash/s for every gated tier."""
    header = b"bench-header"
    rates: dict[str, float] = {}
    for mode in _GATED_MODES:
        core = HashCore(machine=preset(machine_name),
                        params=_params(instructions), mode=mode)
        core.hash(header)  # warm: generation + compilation off the clock
        rates[mode] = _best_rate(
            lambda i, c=core: c.hash(header), hashes, repeats
        )
    return rates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed", type=pathlib.Path,
                        default=pathlib.Path("BENCH_hashrate.json"),
                        help="baseline artifact to compare against")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional drop (0.20 = 20%%)")
    parser.add_argument("--machine", choices=sorted(PRESETS), default=None,
                        help="machine preset (default: the committed one)")
    parser.add_argument("--instructions", type=int, default=None,
                        help="widget size (default: the committed one)")
    parser.add_argument("--hashes", type=int, default=5,
                        help="hashes per timing repeat")
    parser.add_argument("--repeats", type=int, default=6,
                        help="timing repeats (best-of)")
    args = parser.parse_args(argv)

    if not args.committed.exists():
        print(f"no committed baseline at {args.committed}; nothing to gate")
        return 2
    committed = json.loads(args.committed.read_text())
    try:
        baseline = {
            mode: committed["cached_widget"][f"{mode}_hash_s"]
            for mode in _GATED_MODES
        }
    except KeyError as exc:
        print(f"{args.committed} lacks {exc} — regenerate it with "
              f"benchmarks/bench_hashrate.py")
        return 2

    machine = args.machine or committed.get("machine", "ivy-bridge")
    instructions = args.instructions or committed.get(
        "target_instructions", 60_000
    )
    fresh = measure_cached(machine, instructions, args.hashes, args.repeats)

    failed = False
    for mode in _GATED_MODES:
        old, new = baseline[mode], fresh[mode]
        drop = 1.0 - new / old
        verdict = "FAIL" if drop > args.threshold else "ok"
        failed |= verdict == "FAIL"
        print(f"{mode:>5}: committed {old:8.2f} hash/s, fresh {new:8.2f} "
              f"hash/s ({-drop:+.1%})  {verdict}")
    if failed:
        print(f"regression gate FAILED: a tier dropped more than "
              f"{args.threshold:.0%} below {args.committed}")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
