"""Hash-rate regression gate.

Re-measures the cached-widget hash rate of the accelerated execution tiers
(``fast``, ``jit`` and the tier-3 ``batch`` engine) and compares each
against the committed ``BENCH_hashrate.json``.  Exits non-zero when any
tier has lost more than ``--threshold`` (default 20%) of its committed
rate — the cheap guard against silently pessimising the hot paths.

Only the cached-widget regime is gated: it isolates execution speed from
widget generation/compilation (which every tier pays identically), so it
is the number a code change can actually regress.  The tolerance is wide
because these are wall-clock rates on a shared box; catching a 2× cliff
matters, chasing ±10% noise does not.

A second gate bounds the *supervision overhead*: the mining engine's
worker loop (cancel polling, fault-plan hook, poisoned-seed guard, stats
channel) is timed in-process against the bare hash loop it wraps, over
the same warmed nonce range.  Supervision must be near-free on the happy
path — the supervised loop may not fall more than
``--supervision-threshold`` (default 10%) below the bare loop.

A third gate protects *propagation efficiency*: when a committed
``BENCH_propagation.json`` exists, the 100-node gossip scenario is
re-simulated and fails the gate if its block-relay messages-per-block
exceed the committed figure by more than ``--propagation-threshold``
(default 20%) or the run no longer converges inside the quiet window.
Unlike the wall-clock gates this one is deterministic — the chaos
simulation is seeded — so any drift is a real protocol change, not
measurement noise.

A fourth gate protects *pool-server throughput*: when a committed
``BENCH_pool.json`` exists, the small gate point (a batched-verification
blind-client swarm over loopback; see ``bench_poolserver.py``) is
re-measured (best-of-3) and fails the gate when its sustained shares/s
fall more than ``--pool-threshold`` (default 20%) below the committed
figure, or any share in the fresh run errors.

A fifth gate protects *mempool ingest throughput*: when a committed
``BENCH_store.json`` exists, the fee-market admission point (pre-signed
chained spends from many senders; see ``bench_store.py``) is re-measured
(best-of-3) and fails the gate when ingest tx/s falls more than
``--store-threshold`` (default 20%) below the committed figure.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_regression.py

Not a pytest module — it is invoked directly by the verification recipe
(see ``.claude/skills/verify/SKILL.md``) and by hand before committing a
refreshed ``BENCH_hashrate.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_hashrate import _best_rate, _params  # noqa: E402

from repro.core.hashcore import HashCore  # noqa: E402
from repro.machine.config import PRESETS, preset  # noqa: E402

#: Tiers the gate protects (the timed path is the reference model, not a
#: perf artifact, so it is deliberately not gated).  ``batch`` here is the
#: one-lane tier-3 run — slower than ``jit`` by design, but still a hot
#: path (the ladder's top rung) whose cliff-regressions this catches.
_GATED_MODES = ("fast", "jit", "batch")


def measure_cached(machine_name: str, instructions: int, hashes: int,
                   repeats: int) -> dict[str, float]:
    """Fresh cached-widget hash/s for every gated tier."""
    header = b"bench-header"
    rates: dict[str, float] = {}
    for mode in _GATED_MODES:
        core = HashCore(machine=preset(machine_name),
                        params=_params(instructions), mode=mode)
        core.hash(header)  # warm: generation + compilation off the clock
        rates[mode] = _best_rate(
            lambda i, c=core: c.hash(header), hashes, repeats
        )
    return rates


def measure_supervision_overhead(
    machine_name: str, instructions: int, nonces: int, repeats: int
) -> dict[str, float]:
    """Cached-widget hash/s of the supervised worker loop vs the bare
    hash loop it wraps, in-process over one warmed nonce range.

    ``_engine_search`` is invoked directly (worker globals patched in
    place of a pool initializer) so the measurement isolates the per-hash
    supervision cost — cancel polling, the fault-plan hook, the
    poisoned-seed guard, the stats channel — from process-pool transport.
    """
    from repro.blockchain import mining_engine
    from repro.blockchain.block import BlockHeader
    from repro.core.pow import (
        compact_to_target,
        difficulty_to_target,
        target_to_compact,
    )

    bits = target_to_compact(difficulty_to_target(2.0**40))  # never solves
    header = BlockHeader(1, bytes(32), bytes(32), 0, bits, 0)
    core = HashCore(
        machine=preset(machine_name),
        params=_params(instructions),
        mode="jit",
        widget_cache_size=max(
            HashCore.DEFAULT_WIDGET_CACHE_SIZE, 2 * nonces
        ),
    )
    for nonce in range(nonces):  # warm: every nonce's widget in the LRU
        core.hash(header.with_nonce(nonce).serialize())

    def bare(_i: int) -> None:
        for nonce in range(nonces):
            core.hash(header.with_nonce(nonce).serialize())

    search_args = (
        header.serialize(), 0, nonces, compact_to_target(bits), 0
    )

    def supervised(_i: int) -> None:
        mining_engine._engine_search(search_args)

    saved = (
        mining_engine._WORKER_POW,
        mining_engine._WORKER_CANCEL,
        mining_engine._WORKER_FAULTS,
    )
    mining_engine._WORKER_POW = core
    mining_engine._WORKER_CANCEL = None
    mining_engine._WORKER_FAULTS = None
    try:
        # Each fn(i) scans the whole range: scale ranges/s back to hash/s.
        rates = {
            "bare": nonces * _best_rate(bare, 1, repeats),
            "supervised": nonces * _best_rate(supervised, 1, repeats),
        }
    finally:
        (
            mining_engine._WORKER_POW,
            mining_engine._WORKER_CANCEL,
            mining_engine._WORKER_FAULTS,
        ) = saved
    return rates


def check_propagation(committed_path: pathlib.Path, threshold: float,
                      n_nodes: int = 100, relay: str = "gossip") -> bool:
    """Deterministically re-simulate the gated propagation point and
    compare against the committed artifact.  Returns False on failure."""
    from bench_propagation import run_one

    committed = json.loads(committed_path.read_text())
    row = next(
        (r for r in committed.get("rows", [])
         if r["n_nodes"] == n_nodes and r["relay"] == relay),
        None,
    )
    if row is None:
        print(f"{committed_path} has no n={n_nodes} {relay} row — "
              f"regenerate it with benchmarks/bench_propagation.py")
        return False
    fresh = run_one(n_nodes, relay, committed.get("seed", 42))
    old, new = row["messages_per_block"], fresh["messages_per_block"]
    growth = new / old - 1.0
    ok = growth <= threshold and fresh["converged"]
    print(f"propagation n={n_nodes} {relay}: committed {old:.1f} msg/blk, "
          f"fresh {new:.1f} msg/blk ({growth:+.1%}), "
          f"converged={fresh['converged']}  "
          f"{'ok' if ok else 'FAIL'}")
    return ok


def check_pool(committed_path: pathlib.Path, threshold: float) -> bool:
    """Re-measure the committed pool gate point; False on regression."""
    from bench_poolserver import GATE_CLIENTS, GATE_SHARES, gate_point

    committed = json.loads(committed_path.read_text())
    gate = committed.get("gate")
    if not gate or "shares_per_s" not in gate:
        print(f"{committed_path} has no gate point — regenerate it with "
              f"benchmarks/bench_poolserver.py")
        return False
    if (gate.get("clients"), gate.get("shares")) != (
        GATE_CLIENTS, GATE_CLIENTS * GATE_SHARES
    ):
        print(f"{committed_path} gate point shape drifted from "
              f"bench_poolserver.py — regenerate it")
        return False
    try:
        fresh = gate_point()
    except RuntimeError as exc:  # degraded run: dropped/errored shares
        print(f"pool gate: fresh run degraded ({exc})  FAIL")
        return False
    old, new = gate["shares_per_s"], fresh["shares_per_s"]
    drop = 1.0 - new / old
    ok = drop <= threshold
    print(f"pool gate ({GATE_CLIENTS} clients, batched): committed "
          f"{old:8.1f} shares/s, fresh {new:8.1f} shares/s ({-drop:+.1%})  "
          f"{'ok' if ok else 'FAIL'}")
    return ok


def check_store(committed_path: pathlib.Path, threshold: float) -> bool:
    """Re-measure the committed mempool-ingest gate point; False on
    regression past ``threshold``."""
    from bench_store import GATE_DEPTH, GATE_SENDERS, gate_point

    committed = json.loads(committed_path.read_text())
    gate = committed.get("gate")
    if not gate or "ingest_tx_s" not in gate:
        print(f"{committed_path} has no gate point — regenerate it with "
              f"benchmarks/bench_store.py")
        return False
    if (gate.get("senders"), gate.get("depth")) != (GATE_SENDERS, GATE_DEPTH):
        print(f"{committed_path} gate point shape drifted from "
              f"bench_store.py — regenerate it")
        return False
    fresh = gate_point()
    old, new = gate["ingest_tx_s"], fresh["ingest_tx_s"]
    drop = 1.0 - new / old
    ok = drop <= threshold
    print(f"store gate ({GATE_SENDERS} senders x {GATE_DEPTH} txs): "
          f"committed {old:8.1f} tx/s, fresh {new:8.1f} tx/s ({-drop:+.1%})  "
          f"{'ok' if ok else 'FAIL'}")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed", type=pathlib.Path,
                        default=pathlib.Path("BENCH_hashrate.json"),
                        help="baseline artifact to compare against")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional drop (0.20 = 20%%)")
    parser.add_argument("--supervision-threshold", type=float, default=0.10,
                        help="maximum tolerated supervised-vs-bare worker "
                             "loop slowdown (0.10 = 10%%)")
    parser.add_argument("--propagation", type=pathlib.Path,
                        default=pathlib.Path("BENCH_propagation.json"),
                        help="committed propagation artifact (gate skipped "
                             "when absent)")
    parser.add_argument("--propagation-threshold", type=float, default=0.20,
                        help="maximum tolerated messages-per-block growth "
                             "at the gated 100-node gossip point")
    parser.add_argument("--pool", type=pathlib.Path,
                        default=pathlib.Path("BENCH_pool.json"),
                        help="committed pool-server artifact (gate skipped "
                             "when absent)")
    parser.add_argument("--pool-threshold", type=float, default=0.20,
                        help="maximum tolerated sustained shares/s drop at "
                             "the gated pool load point")
    parser.add_argument("--store", type=pathlib.Path,
                        default=pathlib.Path("BENCH_store.json"),
                        help="committed durable chain-state artifact (gate "
                             "skipped when absent)")
    parser.add_argument("--store-threshold", type=float, default=0.20,
                        help="maximum tolerated mempool ingest tx/s drop at "
                             "the gated store point")
    parser.add_argument("--machine", choices=sorted(PRESETS), default=None,
                        help="machine preset (default: the committed one)")
    parser.add_argument("--instructions", type=int, default=None,
                        help="widget size (default: the committed one)")
    parser.add_argument("--hashes", type=int, default=5,
                        help="hashes per timing repeat")
    parser.add_argument("--repeats", type=int, default=6,
                        help="timing repeats (best-of)")
    args = parser.parse_args(argv)

    if not args.committed.exists():
        print(f"no committed baseline at {args.committed}; nothing to gate")
        return 2
    committed = json.loads(args.committed.read_text())
    try:
        baseline = {
            mode: committed["cached_widget"][f"{mode}_hash_s"]
            for mode in _GATED_MODES
        }
    except KeyError as exc:
        print(f"{args.committed} lacks {exc} — regenerate it with "
              f"benchmarks/bench_hashrate.py")
        return 2

    machine = args.machine or committed.get("machine", "ivy-bridge")
    instructions = args.instructions or committed.get(
        "target_instructions", 60_000
    )
    fresh = measure_cached(machine, instructions, args.hashes, args.repeats)

    failed = False
    for mode in _GATED_MODES:
        old, new = baseline[mode], fresh[mode]
        drop = 1.0 - new / old
        verdict = "FAIL" if drop > args.threshold else "ok"
        failed |= verdict == "FAIL"
        print(f"{mode:>5}: committed {old:8.2f} hash/s, fresh {new:8.2f} "
              f"hash/s ({-drop:+.1%})  {verdict}")

    overhead = measure_supervision_overhead(
        machine, instructions, args.hashes, args.repeats
    )
    drop = 1.0 - overhead["supervised"] / overhead["bare"]
    verdict = "FAIL" if drop > args.supervision_threshold else "ok"
    failed |= verdict == "FAIL"
    print(f"supervised worker loop: bare {overhead['bare']:8.2f} hash/s, "
          f"supervised {overhead['supervised']:8.2f} hash/s "
          f"({-drop:+.1%}, budget {args.supervision_threshold:.0%})  "
          f"{verdict}")

    if args.propagation.exists():
        failed |= not check_propagation(
            args.propagation, args.propagation_threshold
        )
    else:
        print(f"no committed propagation baseline at {args.propagation}; "
              f"propagation gate skipped")

    if args.pool.exists():
        failed |= not check_pool(args.pool, args.pool_threshold)
    else:
        print(f"no committed pool baseline at {args.pool}; "
              f"pool gate skipped")

    if args.store.exists():
        failed |= not check_store(args.store, args.store_threshold)
    else:
        print(f"no committed store baseline at {args.store}; "
              f"store gate skipped")

    if failed:
        print(f"regression gate FAILED: a gated metric regressed past its "
              f"threshold (see above)")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
