"""Hash-rate harness for the execution-tier ladder and the mining engine.

Measures end-to-end HashCore hashes/second on every execution tier
(``jit`` / ``fast`` / ``timed``), in the two regimes that matter:

* **cached widget** — repeated hashing of one header (the verifier /
  re-validation / multi-check regime; the widget LRU makes generation and
  compilation one-time costs, so this is "hash/s on the default widget"),
* **fresh widget** — a new nonce per hash (the mining regime; every
  attempt pays generation + compilation too, which is mode-independent
  and therefore dilutes the speedup).

It also races the persistent :class:`~repro.blockchain.mining_engine.
MiningEngine` against :func:`~repro.blockchain.miner.mine_header_parallel`
on a multi-header, fresh-widget-per-nonce search (the regime the engine
exists for: the pool and per-worker PoW objects are built once instead of
once per header), and records the widget/program cache counters from
``HashCore.cache_stats()``.

A SHA-256d rate is included purely for scale — it is the reminder of how
far *any* simulated PoW sits from a native one.

Run from the repository root (writes ``BENCH_hashrate.json`` there)::

    PYTHONPATH=src python benchmarks/bench_hashrate.py

Not a pytest module: experiment benches under ``benchmarks/test_*`` go
through pytest-benchmark; this is a standalone artifact generator whose
JSON output the ARCHITECTURE.md speedup claim, the regression gate
(``benchmarks/check_regression.py``) and the PR record cite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import BlockHeader
from repro.blockchain.miner import mine_header_parallel
from repro.blockchain.mining_engine import MiningEngine
from repro.core.hashcore import HashCore
from repro.core.pow import target_to_compact
from repro.errors import PowError
from repro.machine.config import PRESETS, preset
from repro.widgetgen.params import GeneratorParams

#: Tiers measured, fastest first (matches ``repro.machine.cpu.EXECUTION_MODES``).
_MODES = ("jit", "fast", "timed")

#: Nonce budget per header in the engine comparison.  Deliberately small:
#: the engine exists for the frequent-header-refresh regime (re-timestamped
#: templates, low-difficulty chains) where per-header pool setup dominates a
#: teardown-per-header miner.
_ATTEMPTS_PER_HEADER = 8


def _params(instructions: int) -> GeneratorParams:
    return GeneratorParams(
        target_instructions=instructions,
        snapshot_interval=max(1, instructions // 120),
    )


class _BenchFactory:
    """Picklable PoW factory for the worker-pool comparisons."""

    def __init__(self, machine_name: str, instructions: int) -> None:
        self.machine_name = machine_name
        self.instructions = instructions

    def __call__(self) -> HashCore:
        return HashCore(
            machine=preset(self.machine_name),
            params=_params(self.instructions),
            mode="auto",
        )


def _best_rate(fn, hashes: int, repeats: int) -> float:
    """Best-of-``repeats`` hashes/second for ``fn(i)`` over ``hashes`` calls."""
    best = 0.0
    for rep in range(repeats):
        start = time.perf_counter()
        for i in range(hashes):
            fn(rep * hashes + i)
        best = max(best, hashes / (time.perf_counter() - start))
    return best


def _mine_headers(mine_one, headers: list[BlockHeader]) -> tuple[float, int]:
    """Wall seconds and hashes for exhausting every header's nonce budget."""
    start = time.perf_counter()
    hashes = 0
    for header in headers:
        try:
            mine_one(header)
        except PowError:
            pass  # expected: the target is unreachable, budgets exhaust
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("impossible target was met; bench is invalid")
        hashes += _ATTEMPTS_PER_HEADER
    return time.perf_counter() - start, hashes


def measure_engine(machine_name: str, instructions: int, workers: int,
                   headers: int, repeats: int = 2) -> dict:
    """Race MiningEngine vs mine_header_parallel on a fresh-widget search.

    Every header's nonce budget is exhausted against an unreachable target,
    so both sides compute exactly ``headers * _ATTEMPTS_PER_HEADER``
    hashes; the difference is pure orchestration cost.  The engine pays
    pool spawn + per-worker PoW construction once; ``mine_header_parallel``
    pays them once per header.  The fixed chunk handed to the parallel
    miner is deliberately favourable (workers stay busy) — the engine must
    win on persistence, not on a strawman chunk size.
    """
    factory = _BenchFactory(machine_name, instructions)
    bits = target_to_compact(1 << 32)  # ~2^-224 per hash: never met
    hdrs = [
        BlockHeader(
            version=1,
            prev_hash=bytes(32),
            merkle_root=i.to_bytes(32, "little"),
            timestamp=1_700_000_000 + i,
            bits=bits,
            nonce=0,
        )
        for i in range(headers)
    ]
    chunk = max(1, _ATTEMPTS_PER_HEADER // workers)

    # Both sides start from the same chunk size; the engine adapts from
    # there while the parallel miner is stuck with it.
    # Alternate sides and keep each side's best pass — same best-of
    # discipline as the tier rates, so a background-load spike cannot
    # penalise one side only.
    engine_seconds = parallel_seconds = float("inf")
    hashes = headers * _ATTEMPTS_PER_HEADER
    report = None
    for _ in range(repeats):
        engine = MiningEngine(factory, workers=workers, min_chunk=1,
                              initial_chunk=chunk)
        try:
            seconds, _ = _mine_headers(
                lambda h: engine.mine_header(
                    h, max_attempts=_ATTEMPTS_PER_HEADER
                ),
                hdrs,
            )
            if seconds < engine_seconds:
                engine_seconds = seconds
                report = engine.report()
        finally:
            engine.close()

        seconds, _ = _mine_headers(
            lambda h: mine_header_parallel(
                h, factory, workers=workers, chunk=chunk,
                max_attempts=_ATTEMPTS_PER_HEADER,
            ),
            hdrs,
        )
        parallel_seconds = min(parallel_seconds, seconds)
    return {
        "workers": workers,
        "headers": headers,
        "attempts_per_header": _ATTEMPTS_PER_HEADER,
        "repeats": repeats,
        "parallel_chunk": chunk,
        "engine_hash_s": round(hashes / engine_seconds, 2),
        "parallel_hash_s": round(hashes / parallel_seconds, 2),
        "engine_adaptive_chunk": report.chunk,
        "engine_batches": report.batches,
        "speedup": round(parallel_seconds / engine_seconds, 2),
    }


def measure(machine_name: str, instructions: int, hashes: int,
            repeats: int, workers: int, headers: int) -> dict:
    """Run every measurement and return the result document."""
    # The engine race forks worker processes, so it runs first — before the
    # in-process cores below bloat the parent heap with simulated memories
    # (forked children would repay them in copy-on-write page faults).
    engine = measure_engine(machine_name, instructions, workers, headers,
                            repeats=3)
    header = b"bench-header"
    cores = {
        mode: HashCore(machine=preset(machine_name),
                       params=_params(instructions), mode=mode)
        for mode in _MODES
    }
    # Warm every widget cache and record the widget's true dynamic size.
    retired = (
        cores["fast"].hash_with_trace(header, mode="fast")
        .result.counters.retired
    )
    for mode in _MODES:
        cores[mode].hash(header)

    cached = {
        mode: _best_rate(lambda i, c=core: c.hash(header), hashes, repeats)
        for mode, core in cores.items()
    }
    fresh = {
        mode: _best_rate(
            lambda i, c=core: c.hash(b"bench-nonce-%d" % i), hashes, repeats
        )
        for mode, core in cores.items()
    }
    sha_rate = _best_rate(
        lambda i, s=Sha256d(): s.hash(header + i.to_bytes(8, "little")),
        50_000, repeats,
    )
    return {
        "benchmark": "hashrate",
        "machine": machine_name,
        "target_instructions": instructions,
        "widget_retired": retired,
        "hashes_per_repeat": hashes,
        "repeats": repeats,
        "cached_widget": {
            "jit_hash_s": round(cached["jit"], 2),
            "fast_hash_s": round(cached["fast"], 2),
            "timed_hash_s": round(cached["timed"], 2),
            "jit_vs_fast": round(cached["jit"] / cached["fast"], 2),
            "speedup": round(cached["jit"] / cached["timed"], 2),
        },
        "fresh_widget": {
            "jit_hash_s": round(fresh["jit"], 2),
            "fast_hash_s": round(fresh["fast"], 2),
            "timed_hash_s": round(fresh["timed"], 2),
            "jit_vs_fast": round(fresh["jit"] / fresh["fast"], 2),
            "speedup": round(fresh["jit"] / fresh["timed"], 2),
        },
        # Widget-LRU + per-program code-cache counters after the cached and
        # fresh runs above (the jit core; every core shares the same shape).
        "cache_stats": cores["jit"].cache_stats(),
        "engine_vs_parallel": engine,
        "sha256d_hash_s": round(sha_rate),
        # The headline number: fastest tier vs timed-path hash/s on the
        # default (cached) widget.
        "speedup": round(cached["jit"] / cached["timed"], 2),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; writes the JSON artifact and prints a summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", choices=sorted(PRESETS),
                        default="ivy-bridge")
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="target dynamic instructions per widget")
    parser.add_argument("--hashes", type=int, default=4,
                        help="hashes per timing repeat")
    parser.add_argument("--repeats", type=int, default=4,
                        help="timing repeats (best-of)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the engine comparison")
    parser.add_argument("--headers", type=int, default=10,
                        help="headers mined in the engine comparison")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("BENCH_hashrate.json"))
    args = parser.parse_args(argv)

    doc = measure(args.machine, args.instructions, args.hashes, args.repeats,
                  args.workers, args.headers)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
