"""Hash-rate harness for the dual-path execution engine.

Measures end-to-end HashCore hashes/second on the fast path vs the timed
path, in the two regimes that matter:

* **cached widget** — repeated hashing of one header (the verifier /
  re-validation / multi-check regime; the widget LRU makes generation and
  compilation one-time costs, so this is "hash/s on the default widget"),
* **fresh widget** — a new nonce per hash (the mining regime; every
  attempt pays generation + compilation too, which is mode-independent
  and therefore dilutes the speedup).

A SHA-256d rate is included purely for scale — it is the reminder of how
far *any* simulated PoW sits from a native one.

Run from the repository root (writes ``BENCH_hashrate.json`` there)::

    PYTHONPATH=src python benchmarks/bench_hashrate.py

Not a pytest module: experiment benches under ``benchmarks/test_*`` go
through pytest-benchmark; this is a standalone artifact generator whose
JSON output the ARCHITECTURE.md speedup claim and the PR record cite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.baselines.sha256d import Sha256d
from repro.core.hashcore import HashCore
from repro.machine.config import PRESETS, preset
from repro.widgetgen.params import GeneratorParams


def _params(instructions: int) -> GeneratorParams:
    return GeneratorParams(
        target_instructions=instructions,
        snapshot_interval=max(1, instructions // 120),
    )


def _best_rate(fn, hashes: int, repeats: int) -> float:
    """Best-of-``repeats`` hashes/second for ``fn(i)`` over ``hashes`` calls."""
    best = 0.0
    for rep in range(repeats):
        start = time.perf_counter()
        for i in range(hashes):
            fn(rep * hashes + i)
        best = max(best, hashes / (time.perf_counter() - start))
    return best


def measure(machine_name: str, instructions: int, hashes: int,
            repeats: int) -> dict:
    """Run every measurement and return the result document."""
    header = b"bench-header"
    cores = {
        mode: HashCore(machine=preset(machine_name),
                       params=_params(instructions), mode=mode)
        for mode in ("fast", "timed")
    }
    # Warm both widget caches and record the widget's true dynamic size.
    retired = (
        cores["fast"].hash_with_trace(header, mode="fast")
        .result.counters.retired
    )
    cores["timed"].hash(header)

    cached = {
        mode: _best_rate(lambda i, c=core: c.hash(header), hashes, repeats)
        for mode, core in cores.items()
    }
    fresh = {
        mode: _best_rate(
            lambda i, c=core: c.hash(b"bench-nonce-%d" % i), hashes, repeats
        )
        for mode, core in cores.items()
    }
    sha_rate = _best_rate(
        lambda i, s=Sha256d(): s.hash(header + i.to_bytes(8, "little")),
        50_000, repeats,
    )
    return {
        "benchmark": "hashrate",
        "machine": machine_name,
        "target_instructions": instructions,
        "widget_retired": retired,
        "hashes_per_repeat": hashes,
        "repeats": repeats,
        "cached_widget": {
            "fast_hash_s": round(cached["fast"], 2),
            "timed_hash_s": round(cached["timed"], 2),
            "speedup": round(cached["fast"] / cached["timed"], 2),
        },
        "fresh_widget": {
            "fast_hash_s": round(fresh["fast"], 2),
            "timed_hash_s": round(fresh["timed"], 2),
            "speedup": round(fresh["fast"] / fresh["timed"], 2),
        },
        "sha256d_hash_s": round(sha_rate),
        # The headline number: fast-path vs timed-path hash/s on the
        # default (cached) widget.
        "speedup": round(cached["fast"] / cached["timed"], 2),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; writes the JSON artifact and prints a summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", choices=sorted(PRESETS),
                        default="ivy-bridge")
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="target dynamic instructions per widget")
    parser.add_argument("--hashes", type=int, default=4,
                        help="hashes per timing repeat")
    parser.add_argument("--repeats", type=int, default=4,
                        help="timing repeats (best-of)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("BENCH_hashrate.json"))
    args = parser.parse_args(argv)

    doc = measure(args.machine, args.instructions, args.hashes, args.repeats)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
