"""Hash-rate harness for the execution-tier ladder and the mining engine.

Measures end-to-end HashCore hashes/second on every execution tier
(``batch`` / ``jit`` / ``fast`` / ``timed``), in the two regimes that
matter:

* **cached widget** — repeated hashing of one header (the verifier /
  re-validation / multi-check regime; the widget LRU makes generation and
  compilation one-time costs, so this is "hash/s on the default widget"),
* **fresh widget** — a new nonce per hash (the mining regime; every
  attempt pays generation + compilation too, which is mode-independent
  and therefore dilutes the speedup).  The ``batch`` column runs the
  mining-loop batch API (``HashCore.hash_batch``); because every nonce
  selects a distinct widget program, its lanes are singleton groups and
  the honest expectation is parity with ``jit``, not a SIMD win.

Two microbench sections complete the picture:

* **translation cost** — time-to-first-hash per tier on a *fresh* widget:
  threaded-handler build (``fast``), cold JIT compile, JIT recompile with
  a warm shape-template cache (constant rebind only), and batch-handler
  setup.  This is the cost the shape-template cache attacks.
* **lockstep ensemble** — where tier 3 genuinely pays off: one program,
  N perturbed memory images advanced in lockstep
  (:meth:`Machine.run_lockstep`) vs N scalar JIT runs.  Uses a
  scaled-down memory geometry so the measurement is arithmetic dispatch,
  not ``memcpy`` of N full-size images.

The widget LRU is sized to the benchmark's working set (one cached header
plus every fresh nonce) so the harness measures the tiers, not its own
cache thrashing; hit rates are recorded in the output.

It also races the persistent :class:`~repro.blockchain.mining_engine.
MiningEngine` against :func:`~repro.blockchain.miner.mine_header_parallel`
on a multi-header, fresh-widget-per-nonce search (the regime the engine
exists for: the pool and per-worker PoW objects are built once instead of
once per header), and records the widget/program cache counters from
``HashCore.cache_stats()``.

A SHA-256d rate is included purely for scale — it is the reminder of how
far *any* simulated PoW sits from a native one.

Run from the repository root (writes ``BENCH_hashrate.json`` there)::

    PYTHONPATH=src python benchmarks/bench_hashrate.py

Not a pytest module: experiment benches under ``benchmarks/test_*`` go
through pytest-benchmark; this is a standalone artifact generator whose
JSON output the ARCHITECTURE.md speedup claim, the regression gate
(``benchmarks/check_regression.py``) and the PR record cite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import time

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import BlockHeader
from repro.blockchain.miner import mine_header_parallel
from repro.blockchain.mining_engine import MiningEngine
from repro.core.hashcore import HashCore
from repro.core.pow import target_to_compact
from repro.errors import PowError
from repro.machine.config import PRESETS, preset
from repro.machine.jit import clear_template_cache, template_cache_stats
from repro.widgetgen.params import GeneratorParams

#: Tiers measured, fastest first (matches ``repro.machine.cpu.EXECUTION_MODES``
#: reversed).  ``batch`` in the cached regime is the one-lane tier-3 run —
#: expected *slower* than ``jit`` (lockstep bookkeeping amortises across
#: lanes, and a single lane has nothing to amortise over).
_MODES = ("batch", "jit", "fast", "timed")

#: Nonce budget per header in the engine comparison.  Deliberately small:
#: the engine exists for the frequent-header-refresh regime (re-timestamped
#: templates, low-difficulty chains) where per-header pool setup dominates a
#: teardown-per-header miner.
_ATTEMPTS_PER_HEADER = 8


def _params(instructions: int) -> GeneratorParams:
    return GeneratorParams(
        target_instructions=instructions,
        snapshot_interval=max(1, instructions // 120),
    )


class _BenchFactory:
    """Picklable PoW factory for the worker-pool comparisons."""

    def __init__(self, machine_name: str, instructions: int) -> None:
        self.machine_name = machine_name
        self.instructions = instructions

    def __call__(self) -> HashCore:
        return HashCore(
            machine=preset(self.machine_name),
            params=_params(self.instructions),
            mode="auto",
        )


def _best_rate(fn, hashes: int, repeats: int) -> float:
    """Best-of-``repeats`` hashes/second for ``fn(i)`` over ``hashes`` calls."""
    best = 0.0
    for rep in range(repeats):
        start = time.perf_counter()
        for i in range(hashes):
            fn(rep * hashes + i)
        best = max(best, hashes / (time.perf_counter() - start))
    return best


def _mine_headers(mine_one, headers: list[BlockHeader]) -> tuple[float, int]:
    """Wall seconds and hashes for exhausting every header's nonce budget."""
    start = time.perf_counter()
    hashes = 0
    for header in headers:
        try:
            mine_one(header)
        except PowError:
            pass  # expected: the target is unreachable, budgets exhaust
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("impossible target was met; bench is invalid")
        hashes += _ATTEMPTS_PER_HEADER
    return time.perf_counter() - start, hashes


def measure_engine(machine_name: str, instructions: int, workers: int,
                   headers: int, repeats: int = 2) -> dict:
    """Race MiningEngine vs mine_header_parallel on a fresh-widget search.

    Every header's nonce budget is exhausted against an unreachable target,
    so both sides compute exactly ``headers * _ATTEMPTS_PER_HEADER``
    hashes; the difference is pure orchestration cost.  The engine pays
    pool spawn + per-worker PoW construction once; ``mine_header_parallel``
    pays them once per header.  The fixed chunk handed to the parallel
    miner is deliberately favourable (workers stay busy) — the engine must
    win on persistence, not on a strawman chunk size.
    """
    factory = _BenchFactory(machine_name, instructions)
    bits = target_to_compact(1 << 32)  # ~2^-224 per hash: never met
    hdrs = [
        BlockHeader(
            version=1,
            prev_hash=bytes(32),
            merkle_root=i.to_bytes(32, "little"),
            timestamp=1_700_000_000 + i,
            bits=bits,
            nonce=0,
        )
        for i in range(headers)
    ]
    chunk = max(1, _ATTEMPTS_PER_HEADER // workers)

    # Both sides start from the same chunk size; the engine adapts from
    # there while the parallel miner is stuck with it.
    # Alternate sides and keep each side's best pass — same best-of
    # discipline as the tier rates, so a background-load spike cannot
    # penalise one side only.
    engine_seconds = parallel_seconds = float("inf")
    hashes = headers * _ATTEMPTS_PER_HEADER
    report = None
    for _ in range(repeats):
        engine = MiningEngine(factory, workers=workers, min_chunk=1,
                              initial_chunk=chunk)
        try:
            seconds, _ = _mine_headers(
                lambda h: engine.mine_header(
                    h, max_attempts=_ATTEMPTS_PER_HEADER
                ),
                hdrs,
            )
            if seconds < engine_seconds:
                engine_seconds = seconds
                report = engine.report()
        finally:
            engine.close()

        seconds, _ = _mine_headers(
            lambda h: mine_header_parallel(
                h, factory, workers=workers, chunk=chunk,
                max_attempts=_ATTEMPTS_PER_HEADER,
            ),
            hdrs,
        )
        parallel_seconds = min(parallel_seconds, seconds)
    return {
        "workers": workers,
        "headers": headers,
        "attempts_per_header": _ATTEMPTS_PER_HEADER,
        "repeats": repeats,
        "parallel_chunk": chunk,
        "engine_hash_s": round(hashes / engine_seconds, 2),
        "parallel_hash_s": round(hashes / parallel_seconds, 2),
        "engine_adaptive_chunk": report.chunk,
        "engine_batches": report.batches,
        # Where the workers' attempts actually executed, per machine tier
        # (all on the fastest available tier on a healthy run).
        "engine_tier_runs": report.tier_runs,
        "speedup": round(parallel_seconds / engine_seconds, 2),
    }


def measure_translation(machine_name: str, instructions: int,
                        repeats: int = 5) -> dict:
    """Time-to-first-hash translation cost per tier, on *fresh* widgets.

    This is the latency a miner pays before the first nonce of a new
    widget can execute: building threaded handlers (``fast``), compiling
    specialized Python source (``jit``, cold), recompiling a program
    whose IR *shape* is already in the process-wide template cache
    (constant rebind only — the cost the shape-template cache reduces a
    cold compile to), and building the vectorised step handlers
    (``batch``).  Medians over ``repeats`` distinct widgets.
    """
    core = HashCore(machine=preset(machine_name),
                    params=_params(instructions), widget_cache_size=0)
    fast_ms: list[float] = []
    jit_cold_ms: list[float] = []
    jit_rebind_ms: list[float] = []
    batch_ms: list[float] = []
    # clear_template_cache() zeroes the process-wide counters at the top
    # of every rep, so template_cache_stats() taken once at the end would
    # describe only the *last* rep (hits=1, misses=1) — accumulate each
    # rep's counters instead so the JSON reflects the whole measured run.
    cache_totals = {"hits": 0, "misses": 0, "evictions": 0}
    for rep in range(repeats):
        program = core.widget_for(
            core.seed_of(b"bench-translation-%d" % rep)
        ).program
        clear_template_cache()
        start = time.perf_counter()
        program.fast_handlers()
        fast_ms.append((time.perf_counter() - start) * 1e3)
        start = time.perf_counter()
        program.jit_code()
        jit_cold_ms.append((time.perf_counter() - start) * 1e3)
        # Same program, shape now cached: codegen + exec are skipped and
        # only the constant slots are rebound.
        program.invalidate_code()
        start = time.perf_counter()
        program.jit_code()
        jit_rebind_ms.append((time.perf_counter() - start) * 1e3)
        start = time.perf_counter()
        program.batch_code()
        batch_ms.append((time.perf_counter() - start) * 1e3)
        rep_stats = template_cache_stats()
        for key in cache_totals:
            cache_totals[key] += rep_stats[key]
    cold = statistics.median(jit_cold_ms)
    rebind = statistics.median(jit_rebind_ms)
    lookups = cache_totals["hits"] + cache_totals["misses"]
    final = template_cache_stats()
    return {
        "repeats": repeats,
        "fast_build_ms": round(statistics.median(fast_ms), 3),
        "jit_compile_ms": round(cold, 3),
        "jit_template_rebind_ms": round(rebind, 3),
        "jit_template_speedup": round(cold / rebind, 1) if rebind else None,
        "batch_setup_ms": round(statistics.median(batch_ms), 3),
        "template_cache": {
            "capacity": final["capacity"],
            "size": final["size"],
            "hits": cache_totals["hits"],
            "misses": cache_totals["misses"],
            "evictions": cache_totals["evictions"],
            "hit_rate": round(cache_totals["hits"] / lookups, 4)
            if lookups else 0.0,
        },
    }


def measure_ensemble(machine_name: str, instructions: int, lanes: int,
                     repeats: int = 3) -> dict:
    """Lockstep-ensemble amortisation: one program, ``lanes`` memories.

    This is the regime tier 3 exists for — the *same* widget advanced
    over N perturbed memory images in one vectorised dispatch
    (:meth:`Machine.run_lockstep`) vs N scalar runs.  Mining cannot
    reach it (each nonce selects a distinct program; see
    ``fresh_widget``), but ensemble re-verification and experiment sweeps
    can.  The memory geometry is scaled down so the measurement is
    lockstep dispatch, not ``memcpy`` of N full-size images.

    Both scalar baselines are reported: lockstep amortisation beats the
    threaded fast interpreter, while the scalar JIT (whole basic blocks
    fused into single Python functions) keeps a per-instruction edge
    that widget-sized divergence prevents the masked engine from
    recovering — ``speedup``/``speedup_vs_fast`` quantify both honestly.
    """
    import numpy as np

    cfg = preset(machine_name).scaled_memory(65536)
    core = HashCore(machine=cfg, params=_params(instructions))
    widget = core.widget_for(core.seed_of(b"bench-ensemble"))
    program = widget.program
    machine = core.machine
    fuse = int(widget.spec.meta.get("fuse", 10_000_000))
    interval = widget.spec.snapshot_interval

    base = machine.new_memory()
    for directive in widget.spec.plan.directives():
        directive.apply(base)
    pristine = np.array(base.np_words(), dtype=np.uint64)
    perturb = np.arange(lanes, dtype=np.uint64)

    program.batch_code()  # setup off the clock — it is measured above
    program.jit_code()
    program.fast_handlers()

    def fresh_memories():
        memories = []
        for lane in range(lanes):
            memory = machine.new_memory()
            row = np.asarray(memory.np_words())
            row[:] = pristine
            row[0] += perturb[lane]
            memories.append(memory)
        return memories

    batch_seconds = jit_seconds = fast_seconds = float("inf")
    retired = 0
    for _ in range(repeats):
        mem2d = np.tile(pristine, (lanes, 1))
        mem2d[:, 0] += perturb  # make the lanes distinct executions
        start = time.perf_counter()
        results = machine.run_lockstep(
            program, mem2d, max_instructions=fuse,
            snapshot_interval=interval,
        )
        batch_seconds = min(batch_seconds, time.perf_counter() - start)
        retired = sum(r.counters.retired for r in results)

        scalar = {}
        for mode in ("jit", "fast"):
            memories = fresh_memories()
            start = time.perf_counter()
            for memory in memories:
                machine.run(program, memory, max_instructions=fuse,
                            snapshot_interval=interval, mode=mode)
            scalar[mode] = time.perf_counter() - start
        jit_seconds = min(jit_seconds, scalar["jit"])
        fast_seconds = min(fast_seconds, scalar["fast"])
    return {
        "lanes": lanes,
        "memory_words": cfg.memory_words,
        "repeats": repeats,
        "ensemble_retired": retired,
        "batch_seconds": round(batch_seconds, 4),
        "scalar_jit_seconds": round(jit_seconds, 4),
        "scalar_fast_seconds": round(fast_seconds, 4),
        "ns_per_lane_instr_batch": round(batch_seconds / retired * 1e9, 1),
        "ns_per_instr_jit": round(jit_seconds / retired * 1e9, 1),
        "ns_per_instr_fast": round(fast_seconds / retired * 1e9, 1),
        "speedup": round(jit_seconds / batch_seconds, 2),
        "speedup_vs_fast": round(fast_seconds / batch_seconds, 2),
    }


def measure(machine_name: str, instructions: int, hashes: int,
            repeats: int, workers: int, headers: int) -> dict:
    """Run every measurement and return the result document."""
    # The engine race forks worker processes, so it runs first — before the
    # in-process cores below bloat the parent heap with simulated memories
    # (forked children would repay them in copy-on-write page faults).
    engine = measure_engine(machine_name, instructions, workers, headers,
                            repeats=3)
    translation = measure_translation(machine_name, instructions)
    ensemble = measure_ensemble(machine_name, instructions, lanes=256)
    header = b"bench-header"
    # Size the widget LRU to the working set — the cached header plus
    # every fresh nonce a core will see — so the harness measures the
    # execution tiers, not its own cache thrashing (the default capacity
    # of 16 thrashed here: every fresh-regime pass evicted the cached
    # widget and re-missed its own nonces).
    working_set = 1 + hashes * repeats
    cache_size = max(HashCore.DEFAULT_WIDGET_CACHE_SIZE, working_set)
    cores = {
        mode: HashCore(machine=preset(machine_name),
                       params=_params(instructions), mode=mode,
                       widget_cache_size=cache_size)
        for mode in _MODES
    }
    # Warm every widget cache and record the widget's true dynamic size.
    retired = (
        cores["fast"].hash_with_trace(header, mode="fast")
        .result.counters.retired
    )
    for mode in _MODES:
        cores[mode].hash(header)

    cached = {
        mode: _best_rate(lambda i, c=core: c.hash(header), hashes, repeats)
        for mode, core in cores.items()
    }
    fresh = {
        mode: _best_rate(
            lambda i, c=core: c.hash(b"bench-nonce-%d" % i), hashes, repeats
        )
        for mode, core in cores.items()
        if mode != "batch"
    }
    # The batch column of the fresh regime is the mining batch API — the
    # path the engine workers actually take.  Every nonce selects a
    # distinct program, so its lanes are singleton groups: parity with
    # the scalar jit column is the honest result, and any gap is the
    # batch API's bookkeeping overhead.
    batch_fresh = 0.0
    for rep in range(repeats):
        datas = [
            b"bench-batch-nonce-%d" % (rep * hashes + i)
            for i in range(hashes)
        ]
        start = time.perf_counter()
        cores["batch"].hash_batch(datas)
        batch_fresh = max(
            batch_fresh, hashes / (time.perf_counter() - start)
        )
    fresh["batch"] = batch_fresh
    sha_rate = _best_rate(
        lambda i, s=Sha256d(): s.hash(header + i.to_bytes(8, "little")),
        50_000, repeats,
    )
    return {
        "benchmark": "hashrate",
        "machine": machine_name,
        "target_instructions": instructions,
        "widget_retired": retired,
        "hashes_per_repeat": hashes,
        "repeats": repeats,
        "widget_cache_size": cache_size,
        "cached_widget": {
            "batch_hash_s": round(cached["batch"], 2),
            "jit_hash_s": round(cached["jit"], 2),
            "fast_hash_s": round(cached["fast"], 2),
            "timed_hash_s": round(cached["timed"], 2),
            "jit_vs_fast": round(cached["jit"] / cached["fast"], 2),
            "speedup": round(cached["jit"] / cached["timed"], 2),
        },
        "fresh_widget": {
            "batch_hash_s": round(fresh["batch"], 2),
            "jit_hash_s": round(fresh["jit"], 2),
            "fast_hash_s": round(fresh["fast"], 2),
            "timed_hash_s": round(fresh["timed"], 2),
            "batch_vs_jit": round(fresh["batch"] / fresh["jit"], 2),
            "jit_vs_fast": round(fresh["jit"] / fresh["fast"], 2),
            "speedup": round(fresh["jit"] / fresh["timed"], 2),
        },
        "translation_cost": translation,
        "batch_ensemble": ensemble,
        # Widget-LRU + per-program code-cache counters after the cached and
        # fresh runs above (the jit core; every core shares the same shape).
        "cache_stats": cores["jit"].cache_stats(),
        "batch_cache_stats": cores["batch"].cache_stats(),
        "engine_vs_parallel": engine,
        "sha256d_hash_s": round(sha_rate),
        # The headline number: fastest tier vs timed-path hash/s on the
        # default (cached) widget.
        "speedup": round(cached["jit"] / cached["timed"], 2),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; writes the JSON artifact and prints a summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", choices=sorted(PRESETS),
                        default="ivy-bridge")
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="target dynamic instructions per widget")
    parser.add_argument("--hashes", type=int, default=4,
                        help="hashes per timing repeat")
    parser.add_argument("--repeats", type=int, default=4,
                        help="timing repeats (best-of)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the engine comparison")
    parser.add_argument("--headers", type=int, default=10,
                        help="headers mined in the engine comparison")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("BENCH_hashrate.json"))
    args = parser.parse_args(argv)

    doc = measure(args.machine, args.instructions, args.hashes, args.repeats,
                  args.workers, args.headers)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
