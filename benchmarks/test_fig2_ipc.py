"""E1 — Figure 2: IPC widget comparison.

Paper: 1000 widgets generated from the Leela profile on the Ivy Bridge
Xeon; widget IPC follows "a roughly Gaussian distribution with a mean
slightly lower than those of the original Leela workload."

This bench regenerates the figure: the widget-IPC histogram with the
reference workload's IPC marked, plus the Gaussian fit.
"""

from __future__ import annotations

import statistics

from repro.analysis.stats import ascii_histogram, gaussian_fit, summarize

from benchmarks.conftest import bench_seed, save_result


def test_fig2_ipc_distribution(benchmark, population, generator, machine, profile):
    ipcs = [result.counters.ipc for _, result in population]
    summary = summarize(ipcs)
    mean, std = gaussian_fit(ipcs)

    lines = [
        f"widgets: {len(ipcs)}  (paper: 1000)",
        f"reference (Leela) IPC: {profile.ipc:.3f}",
        f"widget IPC: mean={mean:.3f} std={std:.3f}  ({summary})",
        f"mean shift vs reference: {100 * (mean / profile.ipc - 1):+.1f}% "
        "(paper: slightly below reference)",
        "",
        ascii_histogram(ipcs, bins=12, marker=profile.ipc, marker_label="Leela"),
    ]
    save_result("fig2_ipc", "\n".join(lines))
    from repro.analysis.svg import save_histogram

    from benchmarks.conftest import RESULTS_DIR

    save_histogram(
        RESULTS_DIR / "fig2_ipc.svg",
        ipcs,
        bins=12,
        title="Figure 2 reproduction: IPC widget comparison",
        x_label="widget IPC",
        marker=profile.ipc,
        marker_label="Leela",
    )

    # Shape assertions — the figure's qualitative content.
    assert mean < 1.25 * profile.ipc
    assert mean > 0.6 * profile.ipc
    assert std > 0.05  # a distribution, not a point mass

    # Timed unit: one full widget evaluation (generate + compile + execute).
    def one_widget():
        widget = generator.widget(bench_seed("fig2-timing"))
        return widget.execute(machine).counters.ipc

    benchmark.pedantic(one_widget, rounds=3, iterations=1)


def test_fig2_distribution_is_unimodal(benchmark, population, profile):
    """Gaussian-ish shape check: the central half of the distribution is
    denser than the tails."""
    ipcs = sorted(result.counters.ipc for _, result in population)
    n = len(ipcs)
    central = [x for x in ipcs if abs(x - statistics.median(ipcs)) < statistics.stdev(ipcs)]
    assert len(central) / n > 0.5
    benchmark(lambda: statistics.median(ipcs))
